"""Job model for the campaign service: specs, states, policies, the fold.

A job is one fuzzing campaign owned by a tenant.  Its entire lifecycle is
a sequence of journal records (see :mod:`repro.service.journal`); the
in-memory job table is always *derived* by folding those records, so a
restarted orchestrator reconstructs exactly the state a crashed one had
durably committed.  The fold is deliberately tolerant: an event that does
not type-check against the current state (e.g. a duplicate terminal
transition replayed after a partial crash) is counted as a conflict and
ignored, never fatal — the kill-and-restart acceptance test asserts the
conflict count stays zero.

States::

    pending --> running --> succeeded
       |    <-- (retry/    |
       |         recover)  +--> degraded      (terminal, never lost)
       +--> cancelled      +--> cancelled     (terminal)

``DEGRADED`` is terminal and *explained*: a :class:`DegradeReason` carries
the machine-readable category (``retry-budget``, ``deadline``,
``checkpoint-corrupt``, ``worker-death``, ``task-error``) plus the
human-readable detail, mirroring the richer ``degraded`` telemetry event.
"""

from repro.fuzzer.supervisor import WorkerStallError

PENDING = "pending"
RUNNING = "running"
SUCCEEDED = "succeeded"
DEGRADED = "degraded"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset((SUCCEEDED, DEGRADED, CANCELLED))

#: Events a journal may carry, in the order a healthy job emits them.
JOB_EVENTS = ("submit", "start", "recover", "retry", "done", "degrade", "cancel")

#: Events that are service metadata, not job transitions: the fold tracks
#: them (epoch count, handled intake nonces) but they never touch a
#: JobRecord.  ``refuse`` / ``ack`` settle an intake request (see
#: :mod:`repro.service.intake`) without creating a job; a ``submit`` or
#: ``cancel`` carrying ``payload["request"]`` settles one *by* creating
#: (or transitioning) a job.  ``compact`` marks a journal compaction.
SERVICE_EVENTS = ("epoch", "refuse", "ack", "compact")


class ServiceError(RuntimeError):
    """Base class for campaign-service failures."""


class AdmissionError(ServiceError):
    """The job was refused at submit time (quota exceeded)."""


class OverloadError(AdmissionError):
    """The overload circuit breaker is open; low-priority admission paused."""


class TransitionError(ServiceError):
    """A journal event does not type-check against the job's state."""


class JobTimeoutError(WorkerStallError):
    """Base: a job blew a deadline.

    Subclasses :class:`~repro.fuzzer.supervisor.WorkerStallError` so the
    existing ``recv_with_deadline`` semantics — and
    :func:`~repro.fuzzer.supervisor.failure_category`'s ``"deadline"``
    classification — apply unchanged.
    """


class HeartbeatTimeoutError(JobTimeoutError):
    """No heartbeat within the per-job heartbeat deadline."""


class WallBudgetError(JobTimeoutError):
    """The job exceeded its wall-clock budget for one attempt."""


class DegradeReason:
    """Why a job reached the terminal DEGRADED state."""

    __slots__ = ("category", "detail")

    def __init__(self, category, detail=""):
        self.category = str(category)
        self.detail = str(detail)

    def to_dict(self):
        return {"category": self.category, "detail": self.detail}

    @classmethod
    def from_dict(cls, data):
        return cls(data.get("category", "unknown"), data.get("detail", ""))

    def __repr__(self):
        return "DegradeReason(%s: %s)" % (self.category, self.detail)


class TenantPolicy:
    """Per-tenant quotas: concurrency, backlog, and a shared retry budget."""

    __slots__ = ("name", "max_running", "max_pending", "retry_budget")

    def __init__(self, name, max_running=2, max_pending=16, retry_budget=8):
        self.name = name
        self.max_running = int(max_running)
        self.max_pending = int(max_pending)
        self.retry_budget = int(retry_budget)

    def __repr__(self):
        return "TenantPolicy(%s: run<=%d, pend<=%d, retries<=%d)" % (
            self.name,
            self.max_running,
            self.max_pending,
            self.retry_budget,
        )


class JobSpec:
    """Immutable description of one submitted campaign.

    ``index`` is the submission sequence number — it doubles as the job's
    fault-injection "worker" coordinate (``job-drop@<index>.<msg>``), so
    fault specs stay stable across service restarts.
    """

    __slots__ = (
        "job_id",
        "tenant",
        "priority",
        "subject",
        "config",
        "run_seed",
        "budget_ticks",
        "max_retries",
        "heartbeat_timeout",
        "wall_budget",
        "require_checkpoint",
        "index",
    )

    def __init__(
        self,
        job_id,
        subject,
        config="path",
        run_seed=0,
        tenant="default",
        priority=0,
        budget_ticks=60_000,
        max_retries=2,
        heartbeat_timeout=30.0,
        wall_budget=600.0,
        require_checkpoint=False,
        index=0,
    ):
        self.job_id = str(job_id)
        self.subject = str(subject)
        self.config = str(config)
        self.run_seed = int(run_seed)
        self.tenant = str(tenant)
        self.priority = int(priority)
        self.budget_ticks = int(budget_ticks)
        self.max_retries = int(max_retries)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wall_budget = float(wall_budget)
        self.require_checkpoint = bool(require_checkpoint)
        self.index = int(index)

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data[slot] for slot in cls.__slots__ if slot in data})

    def __repr__(self):
        return "JobSpec(%s: %s/%s#%d, tenant=%s, prio=%d)" % (
            self.job_id,
            self.subject,
            self.config,
            self.run_seed,
            self.tenant,
            self.priority,
        )


class JobRecord:
    """Mutable fold of one job's journal records."""

    __slots__ = (
        "spec",
        "state",
        "attempts",
        "retries_used",
        "reason",
        "summary",
        "pid",
        "pid_host",
        "note",
        "progress",
    )

    def __init__(self, spec):
        self.spec = spec
        self.state = PENDING
        self.attempts = 0  # "start" events seen (= next incarnation)
        self.retries_used = 0
        self.reason = None  # DegradeReason once DEGRADED
        self.summary = None  # worker summary dict once SUCCEEDED
        self.pid = None  # last known worker pid
        self.pid_host = None  # host that pid lives on (None: unrecorded)
        self.note = ""
        self.progress = {}  # last heartbeat payload (not journaled)

    def terminal(self):
        return self.state in TERMINAL_STATES

    def to_state_dict(self):
        """Lossless durable form for journal compaction snapshots.

        Everything the fold knows goes in except the transient fields
        (``pid``, ``progress``), which only describe a live attempt — a
        snapshot is only ever taken of settled state, and recovery
        re-derives liveness anyway.
        """
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "retries_used": self.retries_used,
            "reason": self.reason.to_dict() if self.reason else None,
            "summary": self.summary,
            "note": self.note,
        }

    @classmethod
    def from_state_dict(cls, data):
        record = cls(JobSpec.from_dict(data["spec"]))
        record.state = data.get("state", PENDING)
        record.attempts = int(data.get("attempts", 0))
        record.retries_used = int(data.get("retries_used", 0))
        reason = data.get("reason")
        record.reason = DegradeReason.from_dict(reason) if reason else None
        record.summary = data.get("summary")
        record.note = str(data.get("note", ""))
        return record

    def snapshot(self):
        """JSON-safe status view (the ``repro job status`` payload)."""
        return {
            "job": self.spec.job_id,
            "tenant": self.spec.tenant,
            "subject": self.spec.subject,
            "config": self.spec.config,
            "run_seed": self.spec.run_seed,
            "priority": self.spec.priority,
            "state": self.state,
            "attempts": self.attempts,
            "retries_used": self.retries_used,
            "reason": self.reason.to_dict() if self.reason else None,
            "summary": self.summary,
            "note": self.note,
        }

    def __repr__(self):
        return "JobRecord(%s: %s, attempts=%d, retries=%d)" % (
            self.spec.job_id,
            self.state,
            self.attempts,
            self.retries_used,
        )


def apply_event(jobs, job_id, event, payload):
    """Apply one journal event to the job table; returns 1 on conflict.

    This single code path serves both the recovery fold and the live
    orchestrator (which journals first, then applies), so the in-memory
    table can never drift from what a restart would reconstruct.
    """
    if event in SERVICE_EVENTS:
        return 0
    if event == "submit":
        if job_id in jobs:
            return 1
        jobs[job_id] = JobRecord(JobSpec.from_dict(payload))
        return 0
    record = jobs.get(job_id)
    if record is None or record.terminal():
        return 1
    if event == "start":
        if record.state != PENDING:
            return 1
        record.state = RUNNING
        record.attempts += 1
        record.pid = payload.get("pid")
        record.pid_host = payload.get("host")
    elif event == "recover":
        # Service restart: the attempt died with the orchestrator.  Back to
        # the queue with *no* retry charge — the job did nothing wrong.
        if record.state != RUNNING:
            return 1
        record.state = PENDING
        record.note = payload.get("note", "recovered after service restart")
    elif event == "retry":
        if record.state != RUNNING:
            return 1
        record.state = PENDING
        record.retries_used = int(payload.get("retries_used", record.retries_used))
        record.note = payload.get("reason", "")
    elif event == "done":
        if record.state != RUNNING:
            return 1
        record.state = SUCCEEDED
        record.summary = payload.get("summary")
    elif event == "degrade":
        record.state = DEGRADED
        record.reason = DegradeReason.from_dict(payload)
    elif event == "cancel":
        record.state = CANCELLED
    else:
        return 1
    return 0


class FoldState:
    """Everything the journal fold derives, as one snapshottable value.

    Besides the job table this tracks service metadata the table cannot
    carry: prior-life count, conflict count, and the map of *handled*
    intake nonces to the job each one resolved to (None for a refused or
    acknowledged request) — the latter so a request file replayed after a
    crash can never be converted into a second job.  The whole state
    round-trips through :meth:`to_dict` / :meth:`from_dict`, which is what
    makes journal compaction lossless: ``snapshot + tail`` folds to the
    same value as the full history.
    """

    __slots__ = ("jobs", "epochs", "conflicts", "handled", "upto")

    def __init__(self):
        self.jobs = {}
        self.epochs = 0
        self.conflicts = 0
        self.handled = {}  # request nonce -> job id (None: refused/acked)
        self.upto = -1  # highest folded seq; compaction's high-water mark

    def apply(self, record):
        """Fold one :class:`repro.service.journal.JournalRecord`."""
        if record.seq > self.upto:
            self.upto = record.seq
        event = record.event
        payload = record.payload or {}
        if event == "epoch":
            self.epochs += 1
            return
        if event in ("refuse", "ack"):
            self._settle(payload.get("request"), None)
            return
        if event == "compact":
            return
        if event in ("submit", "cancel"):
            self._settle(payload.get("request"), record.job)
        self.conflicts += apply_event(self.jobs, record.job, event, payload)

    def _settle(self, nonce, job_id):
        if nonce:
            self.handled[nonce] = job_id

    def to_dict(self):
        return {
            "jobs": {
                job_id: record.to_state_dict()
                for job_id, record in self.jobs.items()
            },
            "epochs": self.epochs,
            "conflicts": self.conflicts,
            "handled": self.handled,
            "upto": self.upto,
        }

    @classmethod
    def from_dict(cls, data):
        state = cls()
        jobs = data.get("jobs") or {}
        for job_id in sorted(
            jobs, key=lambda jid: jobs[jid].get("spec", {}).get("index", 0)
        ):
            state.jobs[job_id] = JobRecord.from_state_dict(jobs[job_id])
        state.epochs = int(data.get("epochs", 0))
        state.conflicts = int(data.get("conflicts", 0))
        handled = data.get("handled") or {}
        if isinstance(handled, dict):
            state.handled = dict(handled)
        else:  # older snapshots stored a bare list of nonces
            state.handled = {nonce: None for nonce in handled}
        state.upto = int(data.get("upto", -1))
        return state


def fold_state(records, base=None):
    """Fold journal records (in seq order) into a :class:`FoldState`.

    ``base`` seeds the fold from a compaction snapshot; the caller is
    responsible for passing only records *beyond* the snapshot's
    high-water mark (``record.seq > base.upto``) — re-applying an already
    folded record would double-count it.
    """
    state = base if base is not None else FoldState()
    for record in records:
        state.apply(record)
    return state


def fold_records(records):
    """Fold scanned journal records into ``(jobs, epochs, conflicts)``.

    ``records`` are :class:`repro.service.journal.JournalRecord` in seq
    order.  ``epochs`` counts prior service lives (the next life's
    fault-injection incarnation); ``conflicts`` counts events that did not
    type-check — zero for any journal an uncorrupted service wrote, even
    one killed mid-transition, because each record is atomic.
    """
    state = fold_state(records)
    return state.jobs, state.epochs, state.conflicts
