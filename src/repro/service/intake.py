"""Live intake: request files any process may drop for a running daemon.

A stopped service root accepts submissions directly — ``repro job
submit`` takes the root lock and journals the ``submit`` record itself.
Against a *live* root that path is closed (the daemon owns the lock), so
live submissions travel as **request files** instead: self-verifying,
atomically-written ``journal/req:<nonce>,hash:<sha1>`` files that need
no lock at all.  The daemon's journal-tail watcher picks them up,
re-checks admission (quotas, overload breaker — the client's view may be
stale), and settles each request exactly once by journaling a real
``submit`` / ``cancel`` (with ``payload["request"] = nonce``), a
``refuse``, or an ``ack`` — then deletes the file.

Exactly-once hinges on the nonce: the settling journal record names it,
the fold tracks every settled nonce (see
:class:`repro.service.jobs.FoldState`), and a request file that survives
a daemon crash after its settling record committed is recognized as
settled and discarded on recovery, never converted twice.

The files are deliberately *not* journal records: journal sequence
numbers belong to the root's (single, fenced) lock holder, so granting
them to arbitrary submitters would reopen the multi-writer races the
lease protocol just closed.  Requests are unordered by design — the
daemon admits them in nonce order within one pump — and carry no
authority until the daemon converts them.
"""

import binascii
import hashlib
import json
import os

from repro.fuzzer.store import atomic_write_bytes, _fsync_dir
from repro.service.journal import JOURNAL_DIR

REQUEST_VERSION = 1

#: Request kinds a daemon understands.
REQUEST_KINDS = ("submit-request", "cancel-request", "drain-request")


def request_name(nonce, digest):
    return "req:%s,hash:%s" % (nonce, digest)


def parse_request_name(name):
    """``(nonce, hash)`` from a request file name, or None."""
    fields = {}
    order = []
    for part in name.split(","):
        key, colon, value = part.partition(":")
        if not colon:
            return None
        fields[key] = value
        order.append(key)
    if order != ["req", "hash"]:
        return None
    return fields["req"], fields["hash"]


def new_nonce():
    """A fresh client-side request id (``req-<12 hex>``)."""
    return "req-%s" % binascii.hexlify(os.urandom(6)).decode("ascii")


def write_request(root, kind, payload=None, fsync=True):
    """Atomically drop one request file for the daemon; returns its nonce.

    Safe against any number of concurrent writers and against the daemon
    reading mid-drop: the tmp+rename discipline means the file is either
    absent or complete, and the embedded hash proves completeness.
    """
    if kind not in REQUEST_KINDS:
        raise ValueError("unknown request kind %r" % (kind,))
    journal_dir = os.path.join(os.path.abspath(root), JOURNAL_DIR)
    os.makedirs(journal_dir, exist_ok=True)
    nonce = new_nonce()
    body = json.dumps(
        {
            "version": REQUEST_VERSION,
            "nonce": nonce,
            "kind": kind,
            "payload": payload or {},
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    digest = hashlib.sha1(body).hexdigest()
    atomic_write_bytes(
        os.path.join(journal_dir, request_name(nonce, digest)), body, fsync=fsync
    )
    if fsync:
        _fsync_dir(journal_dir)
    return nonce


def scan_requests(root):
    """Verified pending requests: ``(requests, damaged)``.

    ``requests`` is a list of ``{"nonce", "kind", "payload", "path"}``
    dicts sorted by nonce (admission order within one pump); ``damaged``
    lists ``(name, reason)`` for files that failed verification — the
    caller decides whether to quarantine them.  Never raises on damage.
    """
    journal_dir = os.path.join(os.path.abspath(root), JOURNAL_DIR)
    requests = []
    damaged = []
    try:
        names = os.listdir(journal_dir)
    except OSError:
        names = []
    for name in sorted(names):
        parsed = parse_request_name(name)
        if parsed is None:
            continue
        nonce, digest = parsed
        path = os.path.join(journal_dir, name)
        if not os.path.isfile(path) or ".tmp." in name:
            continue
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError as exc:
            damaged.append((name, "unreadable: %s" % exc))
            continue
        if hashlib.sha1(body).hexdigest() != digest:
            damaged.append((name, "hash mismatch (torn?)"))
            continue
        try:
            data = json.loads(body.decode("utf-8"))
        except ValueError:
            damaged.append((name, "malformed JSON"))
            continue
        if not isinstance(data, dict) or data.get("nonce") != nonce:
            damaged.append((name, "nonce mismatch"))
            continue
        requests.append(
            {
                "nonce": nonce,
                "kind": data.get("kind", "?"),
                "payload": data.get("payload") or {},
                "path": path,
            }
        )
    return requests, damaged


def discard_request(path):
    """Remove a settled (or hopeless) request file, best-effort."""
    try:
        os.unlink(path)
    except OSError:
        pass


def submit_request(root, spec_kwargs, fsync=True):
    """Ask the live daemon to admit one campaign; returns the nonce."""
    return write_request(
        root, "submit-request", {"spec": dict(spec_kwargs)}, fsync=fsync
    )


def cancel_request(root, job_id, fsync=True):
    """Ask the live daemon to cancel one job; returns the nonce."""
    return write_request(
        root, "cancel-request", {"job": str(job_id)}, fsync=fsync
    )


def drain_request(root, fsync=True):
    """Ask the live daemon to finish its backlog and exit; returns the nonce."""
    return write_request(root, "drain-request", {}, fsync=fsync)
