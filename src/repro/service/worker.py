"""The service's job worker: one campaign, run slice-by-slice, supervised.

A job worker owns one whole campaign (unlike the instance workers of
:mod:`repro.fuzzer.parallel`, which share one).  It reuses the same
survival kit: the engine streams artifacts into a durable
:class:`~repro.fuzzer.store.CampaignStore` slice under the job directory,
and a versioned checkpoint is written after every budget slice, so a
retried attempt resumes instead of restarting.

The resume ladder on respawn (``incarnation > 0``) mirrors PR 2/PR 4:

1. a valid ``engine.ckpt`` resumes tick-exactly;
2. a missing/torn checkpoint falls back to replaying the durable store
   slice (lossless for everything committed, not tick-identical) — unless
   the spec says ``require_checkpoint``, in which case the corruption is
   reported as a typed ``checkpoint-corrupt`` failure and the job
   degrades instead of silently recomputing;
3. an empty store means a fresh start.

Every outbound message (heartbeats and the final result alike) passes the
fault gate: ``job-drop@<job-index>.<msg>`` swallows it, ``heartbeat-stall``
wedges first — exactly the half-dead-pipe shapes the orchestrator's
heartbeat deadline exists to catch.
"""

import os

from repro.fuzzer import faultinject
from repro.fuzzer.checkpoint import CheckpointError
from repro.fuzzer.parallel import _build_instance_engine
from repro.fuzzer.store import (
    MAIN_WORKER,
    CampaignStore,
    StoreFencedError,
    attach_store,
)
from repro.service.jobs import JobSpec

#: Budget slices per attempt: one checkpoint + heartbeat per slice.
SLICES = 8

CHECKPOINT_NAME = "engine.ckpt"
STORE_DIR = "store"


class _WireGuard:
    """Counts outbound messages and fires jobmsg faults before each send."""

    def __init__(self, conn, job_index, incarnation):
        self.conn = conn
        self.job_index = job_index
        self.incarnation = incarnation
        self.msg_no = 0

    def send(self, message):
        self.msg_no += 1
        plan = faultinject.active_plan()
        if plan:
            fault = plan.match(
                "jobmsg", self.job_index, self.msg_no, self.incarnation
            )
            if fault is not None and faultinject.fire_jobmsg_fault(fault):
                return False  # injected drop: the message evaporates
        self.conn.send(message)
        return True


def _summary(engine, slices_done):
    """JSON-safe end-of-attempt summary (crosses the pipe and the journal)."""
    return {
        "execs": engine.execs,
        "ticks": engine.clock.ticks,
        "queue": len(engine.queue.entries),
        "coverage": engine.virgin.coverage_count(),
        "crash_count": engine.crash_count,
        "crash_sigs": sorted(engine.unique_crashes),
        "hangs": engine.hangs,
        "slices": slices_done,
    }


def job_worker_main(conn, spec_dict, job_dir, incarnation=0, lease_ttl=None):
    """Process entry: run (or resume) one job campaign to completion.

    ``lease_ttl`` (inherited from the service) puts the store slice under
    a lease too: the worker renews it at every slice boundary, and a
    successor service on another host can steal the slice once the lease
    runs out instead of waiting on an unkillable foreign pid.  A worker
    whose slice lease was stolen reports the typed ``fenced`` failure —
    the orchestrator retries with a fresh slice epoch, and every write
    the stale attempt tried after the steal was refused at the store
    boundary (:class:`~repro.fuzzer.store.StoreFencedError`).
    """
    spec = JobSpec.from_dict(spec_dict)
    guard = _WireGuard(conn, spec.index, incarnation)
    store = None
    try:
        from repro import telemetry

        telemetry.child_trace("job-%s" % spec.job_id)
        subject, engine = _build_instance_engine(
            spec.subject, spec.config, spec.run_seed, 0
        )
        engine.telemetry = telemetry.engine_telemetry(
            label=spec.job_id, budget_ticks=spec.budget_ticks
        )
        store = CampaignStore(
            os.path.join(job_dir, STORE_DIR),
            worker=MAIN_WORKER,
            meta={
                "subject": spec.subject,
                "config": spec.config,
                "run_seed": spec.run_seed,
            },
            worker_index=spec.index,
            incarnation=incarnation,
            lease_ttl=lease_ttl,
        )
        engine.store = store
        ckpt_path = os.path.join(job_dir, CHECKPOINT_NAME)
        done_slices = 0
        resumed = False
        if incarnation > 0 and os.path.exists(ckpt_path):
            try:
                meta = engine.resume(ckpt_path)
                done_slices = int(meta.get("slice", 0))
                attach_store(engine, store)
                resumed = True
            except (CheckpointError, OSError) as exc:
                if spec.require_checkpoint:
                    # The operator asked for tick-exact resume or nothing:
                    # report the typed corruption and let the job degrade.
                    guard.send(
                        (
                            "error",
                            "checkpoint-corrupt",
                            "%s: %s" % (type(exc).__name__, exc),
                        )
                    )
                    return
        if not resumed:
            engine.start(spec.budget_ticks)
            if incarnation > 0 and store.has_artifacts():
                # No (valid) checkpoint: the durable store slice is the
                # newest surviving truth.  Quarantine-tolerant replay.
                store.replay_into(engine)
        plan = faultinject.active_plan()
        for slice_no in range(done_slices, SLICES):
            engine.run_until(spec.budget_ticks * (slice_no + 1) // SLICES)
            store.renew_lease()
            engine.save_checkpoint(
                ckpt_path, meta={"slice": slice_no + 1, "job": spec.job_id}
            )
            if plan:
                fault = plan.match(
                    "checkpoint", spec.index, slice_no + 1, incarnation
                )
                if fault is not None:
                    faultinject.fire_checkpoint_fault(fault, ckpt_path)
            guard.send(("heartbeat", _summary(engine, slice_no + 1)))
        engine.finish()
        store.finalize(engine, extra={"job": spec.job_id})
        guard.send(("done", _summary(engine, SLICES)))
    except StoreFencedError as exc:
        try:
            guard.send(("error", "fenced", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    except BaseException as exc:
        try:
            guard.send(("error", "task-error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        if store is not None:
            try:
                store.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass
