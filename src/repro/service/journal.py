"""Crash-safe job journal: one atomic record per state transition.

The journal is the service's source of truth.  Every record is its own
file — ``journal/rec:<seq>,hash:<sha1>`` — written with the store's
tmp+flush+fsync+rename discipline, so a crash at *any* instant leaves
either a fully-committed record or nothing under the real name (at worst
a ``*.tmp.<pid>`` straggler the scan ignores).  The embedded content hash
makes every record self-verifying, exactly like store artifacts.

Recovery is a tolerant scan: records whose name, hash, JSON body, or
sequence number do not check out move to ``journal/quarantine/`` and the
scan continues — damage (e.g. an injected ``journal-torn`` fault, or real
media corruption) costs at most the damaged records, never the service.

Fault injection: ``append`` is the service's journal-commit clock.  After
the n-th durable commit of this process, a matching ``journal-torn`` /
``orch-kill`` fault fires (see :mod:`repro.fuzzer.faultinject`) — torn
records exercise the quarantine path, ``orch-kill`` proves the restart
ladder at every commit point.
"""

import hashlib
import json
import os

from repro.fuzzer import faultinject
from repro.fuzzer.store import atomic_write_bytes, _fsync_dir

JOURNAL_VERSION = 1
JOURNAL_DIR = "journal"
QUARANTINE_DIR = "quarantine"

_SEQ_WIDTH = 8


def record_name(seq, digest):
    return "rec:%0*d,hash:%s" % (_SEQ_WIDTH, seq, digest)


def parse_record_name(name):
    """``(seq, hash)`` from a journal record file name, or None."""
    fields = {}
    order = []
    for part in name.split(","):
        key, colon, value = part.partition(":")
        if not colon:
            return None
        fields[key] = value
        order.append(key)
    if order != ["rec", "hash"]:
        return None
    try:
        return int(fields["rec"]), fields["hash"]
    except ValueError:
        return None


class JournalRecord:
    """One committed state transition."""

    __slots__ = ("seq", "job", "event", "payload")

    def __init__(self, seq, job, event, payload):
        self.seq = seq
        self.job = job
        self.event = event
        self.payload = payload

    def __repr__(self):
        return "JournalRecord(#%d %s %s)" % (self.seq, self.job, self.event)


class JobJournal:
    """Append-only, crash-safe record log under ``<root>/journal/``.

    ``service_index`` and ``epoch`` key the fault plan: journal faults are
    ``<action>@<service_index>.<nth-commit>[.<epoch>]``, with the commit
    counter local to this process so a restarted service's clock starts
    over (and, with the default incarnation 0, runs clean).
    """

    def __init__(self, root, fsync=True, service_index=0, epoch=0):
        self.dir = os.path.join(os.path.abspath(root), JOURNAL_DIR)
        self.quarantine_dir = os.path.join(self.dir, QUARANTINE_DIR)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self.fsync = fsync
        self.service_index = int(service_index)
        self.epoch = int(epoch)
        self._next_seq = 0
        self._commits = 0  # commits by THIS process: the fault-plan clock

    # -- writing ---------------------------------------------------------------

    def append(self, job, event, payload=None):
        """Durably commit one record; returns its sequence number.

        The fault hook fires *after* the rename (and directory fsync), so
        an ``orch-kill`` at commit n proves the record survives the death —
        the restarted service must observe it.
        """
        seq = self._next_seq
        self._next_seq += 1
        body = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "seq": seq,
                "job": job,
                "event": event,
                "payload": payload or {},
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        digest = hashlib.sha1(body).hexdigest()
        path = os.path.join(self.dir, record_name(seq, digest))
        atomic_write_bytes(path, body, fsync=self.fsync)
        if self.fsync:
            _fsync_dir(self.dir)
        self._commits += 1
        plan = faultinject.active_plan()
        if plan:
            fault = plan.match(
                "journal", self.service_index, self._commits, self.epoch
            )
            if fault is not None:
                faultinject.fire_journal_fault(fault, path)
        return seq

    # -- recovery --------------------------------------------------------------

    def scan(self, quarantine=True):
        """Tolerant recovery scan; returns ``(records, quarantined)``.

        ``records`` is every verified :class:`JournalRecord` in sequence
        order; ``quarantined`` lists ``(name, reason)`` for files that
        failed verification and were moved aside (or merely skipped with
        ``quarantine=False`` — the read-only mode CLI inspection uses so
        it never mutates a live service's journal).  Also adopts the next
        sequence number, so appends continue the surviving sequence.
        """
        records = []
        quarantined = []
        try:
            names = os.listdir(self.dir)
        except OSError:
            names = []
        for name in sorted(names):
            path = os.path.join(self.dir, name)
            if not os.path.isfile(path):
                continue
            if ".tmp." in name:
                continue  # atomic-write straggler from a crashed writer
            parsed = parse_record_name(name)
            if parsed is None:
                if not name.startswith("rec:"):
                    continue
                self._quarantine(path, "unparseable name", quarantined, quarantine)
                continue
            seq, digest = parsed
            try:
                with open(path, "rb") as handle:
                    body = handle.read()
            except OSError as exc:
                self._quarantine(path, "unreadable: %s" % exc, quarantined, quarantine)
                continue
            if hashlib.sha1(body).hexdigest() != digest:
                self._quarantine(path, "hash mismatch (torn?)", quarantined, quarantine)
                continue
            try:
                data = json.loads(body.decode("utf-8"))
            except ValueError:
                self._quarantine(path, "malformed JSON", quarantined, quarantine)
                continue
            if not isinstance(data, dict) or int(data.get("seq", -1)) != seq:
                self._quarantine(path, "sequence mismatch", quarantined, quarantine)
                continue
            records.append(
                JournalRecord(
                    seq, data.get("job"), data.get("event", "?"),
                    data.get("payload") or {},
                )
            )
        records.sort(key=lambda record: record.seq)
        self._next_seq = records[-1].seq + 1 if records else 0
        return records, quarantined

    def _quarantine(self, path, reason, quarantined, move):
        name = os.path.basename(path)
        quarantined.append((name, reason))
        if not move:
            return
        target = os.path.join(self.quarantine_dir, name)
        try:
            os.replace(path, target)
        except OSError:
            pass
