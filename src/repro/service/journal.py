"""Crash-safe job journal: one atomic record per state transition.

The journal is the service's source of truth.  Every record is its own
file — ``journal/rec:<seq>,hash:<sha1>`` — written with the store's
tmp+flush+fsync+rename discipline, so a crash at *any* instant leaves
either a fully-committed record or nothing under the real name (at worst
a ``*.tmp.<pid>`` straggler the scan ignores).  The embedded content hash
makes every record self-verifying, exactly like store artifacts.

Three properties keep the journal safe when the root is *shared* —
across hosts, and across the daemon/submitter process boundary:

- **Sequence claims.**  Legitimate writers are serialized by the root
  lock (live submissions travel as ``req:`` files, see
  :mod:`repro.service.intake` — never as raw journal appends), but a
  *displaced* holder does not know it lost the root and may still
  append.  Each append therefore first claims its sequence number via
  an ``O_EXCL`` create under ``journal/seq/``, so two writers can never
  commit different records under the same seq; a claim whose record
  never landed (crashed writer) costs a harmless gap.
- **Fencing.**  Every record carries the writer's fencing epoch (see
  :mod:`repro.service.lease`).  ``append`` re-checks the lease right
  before committing, and the recovery scan quarantines any record whose
  fence *regresses* — the signature of a displaced holder's late write.
- **Compaction.**  Terminal state is folded into self-verifying
  snapshot files — ``journal/snap:<seq>,hash:<sha1>`` — holding the
  entire :class:`repro.service.jobs.FoldState` up to a sequence
  high-water mark.  Recovery loads the newest valid snapshot and folds
  only the records beyond it.  Deletion *lags one snapshot*: compaction
  N removes only records already covered by snapshot N-1 and keeps the
  two newest snapshots, so a torn newest snapshot falls back to the
  previous one with every needed record still on disk — a kill at any
  instant leaves the old view or the new one, never a torn one.

Recovery is a tolerant scan: records whose name, hash, JSON body,
sequence number, or fence do not check out move to
``journal/quarantine/`` and the scan continues — damage (e.g. an
injected ``journal-torn`` fault, or real media corruption) costs at most
the damaged records, never the service.

Fault injection: ``append`` is the service's journal-commit clock.  After
the n-th durable commit of this process, a matching ``journal-torn`` /
``orch-kill`` fault fires (see :mod:`repro.fuzzer.faultinject`) — torn
records exercise the quarantine path, ``orch-kill`` proves the restart
ladder at every commit point.
"""

import errno
import hashlib
import json
import os

from repro.fuzzer import faultinject
from repro.fuzzer.store import atomic_write_bytes, _fsync_dir
from repro.service.jobs import FoldState, fold_state

JOURNAL_VERSION = 1
SNAPSHOT_VERSION = 1
JOURNAL_DIR = "journal"
QUARANTINE_DIR = "quarantine"
SEQ_DIR = "seq"

_SEQ_WIDTH = 8


def record_name(seq, digest):
    return "rec:%0*d,hash:%s" % (_SEQ_WIDTH, seq, digest)


def snapshot_name(seq, digest):
    return "snap:%0*d,hash:%s" % (_SEQ_WIDTH, seq, digest)


def _parse_name(name, kind):
    fields = {}
    order = []
    for part in name.split(","):
        key, colon, value = part.partition(":")
        if not colon:
            return None
        fields[key] = value
        order.append(key)
    if order != [kind, "hash"]:
        return None
    try:
        return int(fields[kind]), fields["hash"]
    except ValueError:
        return None


def parse_record_name(name):
    """``(seq, hash)`` from a journal record file name, or None."""
    return _parse_name(name, "rec")


def parse_snapshot_name(name):
    """``(upto_seq, hash)`` from a snapshot file name, or None."""
    return _parse_name(name, "snap")


class JournalRecord:
    """One committed state transition."""

    __slots__ = ("seq", "job", "event", "payload", "fence")

    def __init__(self, seq, job, event, payload, fence=0):
        self.seq = seq
        self.job = job
        self.event = event
        self.payload = payload
        self.fence = int(fence)

    def __repr__(self):
        return "JournalRecord(#%d %s %s f%d)" % (
            self.seq,
            self.job,
            self.event,
            self.fence,
        )


class JobJournal:
    """Append-only, crash-safe record log under ``<root>/journal/``.

    ``service_index`` and ``epoch`` key the fault plan: journal faults are
    ``<action>@<service_index>.<nth-commit>[.<epoch>]``, with the commit
    counter local to this process so a restarted service's clock starts
    over (and, with the default incarnation 0, runs clean).

    ``fence`` is stamped into every record this writer commits; ``lease``
    (a :class:`repro.service.lease.ServiceLease`), when given, is
    re-checked before each commit so a fenced holder aborts with
    :class:`~repro.service.lease.LeaseLostError` instead of writing.
    Writers without the root lock (live submitters) pass neither and
    stamp the fence they last observed.
    """

    def __init__(self, root, fsync=True, service_index=0, epoch=0, fence=0,
                 lease=None):
        self.dir = os.path.join(os.path.abspath(root), JOURNAL_DIR)
        self.quarantine_dir = os.path.join(self.dir, QUARANTINE_DIR)
        self.seq_dir = os.path.join(self.dir, SEQ_DIR)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        os.makedirs(self.seq_dir, exist_ok=True)
        self.fsync = fsync
        self.service_index = int(service_index)
        self.epoch = int(epoch)
        self.fence = int(fence)
        self.lease = lease
        self._next_seq = None  # lazily adopted from disk
        self._commits = 0  # commits by THIS process: the fault-plan clock

    # -- writing ---------------------------------------------------------------

    def append(self, job, event, payload=None):
        """Durably commit one record; returns its sequence number.

        The fault hook fires *after* the rename (and directory fsync), so
        an ``orch-kill`` at commit n proves the record survives the death —
        the restarted service must observe it.
        """
        if self.lease is not None:
            self.lease.check()
        seq = self._claim_seq()
        body = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "seq": seq,
                "job": job,
                "event": event,
                "payload": payload or {},
                "fence": self.fence,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        digest = hashlib.sha1(body).hexdigest()
        path = os.path.join(self.dir, record_name(seq, digest))
        atomic_write_bytes(path, body, fsync=self.fsync)
        if self.fsync:
            _fsync_dir(self.dir)
        self._commits += 1
        plan = faultinject.active_plan()
        if plan:
            fault = plan.match(
                "journal", self.service_index, self._commits, self.epoch
            )
            if fault is not None:
                faultinject.fire_journal_fault(fault, path)
        return seq

    def _claim_seq(self):
        """Reserve the next free sequence number, multi-writer safe.

        The ``O_EXCL`` create under ``journal/seq/`` is the arbitration
        point: of any number of concurrent writers eyeing the same seq,
        exactly one wins it; the rest re-adopt from disk and move up.  A
        claim without a record (writer died in between) is a gap the fold
        does not mind.
        """
        if self._next_seq is None:
            self._next_seq = self._adopted_seq()
        while True:
            seq = self._next_seq
            claim = os.path.join(self.seq_dir, "%0*d" % (_SEQ_WIDTH, seq))
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                self._next_seq = max(self._adopted_seq(), seq + 1)
                continue
            os.close(fd)
            self._next_seq = seq + 1
            return seq

    def _adopted_seq(self):
        """Next sequence number per disk: past every claim, record, snapshot."""
        top = -1
        try:
            names = os.listdir(self.seq_dir)
        except OSError:
            names = []
        for name in names:
            try:
                top = max(top, int(name))
            except ValueError:
                pass
        try:
            names = os.listdir(self.dir)
        except OSError:
            names = []
        for name in names:
            parsed = parse_record_name(name) or parse_snapshot_name(name)
            if parsed is not None:
                top = max(top, parsed[0])
        return top + 1

    # -- recovery --------------------------------------------------------------

    def scan(self, quarantine=True):
        """Tolerant recovery scan; returns ``(records, quarantined)``.

        ``records`` is every verified :class:`JournalRecord` in sequence
        order; ``quarantined`` lists ``(name, reason)`` for files that
        failed verification and were moved aside (or merely skipped with
        ``quarantine=False`` — the read-only mode CLI inspection uses so
        it never mutates a live service's journal).  Beyond per-file
        verification, the scan enforces cross-record invariants: duplicate
        sequence numbers resolve to the highest-fence record, and a record
        whose fence regresses below an earlier record's (a displaced
        holder's late write) is quarantined.  Also adopts the next
        sequence number, so appends continue the surviving sequence.
        """
        by_seq = {}
        quarantined = []
        try:
            names = os.listdir(self.dir)
        except OSError:
            names = []
        for name in sorted(names):
            path = os.path.join(self.dir, name)
            if not os.path.isfile(path):
                continue
            if ".tmp." in name:
                continue  # atomic-write straggler from a crashed writer
            parsed = parse_record_name(name)
            if parsed is None:
                if not name.startswith("rec:"):
                    continue  # snapshots and foreign files: not ours to judge
                self._quarantine(path, "unparseable name", quarantined, quarantine)
                continue
            seq, digest = parsed
            try:
                with open(path, "rb") as handle:
                    body = handle.read()
            except OSError as exc:
                self._quarantine(path, "unreadable: %s" % exc, quarantined, quarantine)
                continue
            if hashlib.sha1(body).hexdigest() != digest:
                self._quarantine(path, "hash mismatch (torn?)", quarantined, quarantine)
                continue
            try:
                data = json.loads(body.decode("utf-8"))
            except ValueError:
                self._quarantine(path, "malformed JSON", quarantined, quarantine)
                continue
            if not isinstance(data, dict) or int(data.get("seq", -1)) != seq:
                self._quarantine(path, "sequence mismatch", quarantined, quarantine)
                continue
            record = JournalRecord(
                seq,
                data.get("job"),
                data.get("event", "?"),
                data.get("payload") or {},
                data.get("fence", 0),
            )
            rival = by_seq.get(seq)
            if rival is None:
                by_seq[seq] = (record, digest, path)
                continue
            # Two verified records under one seq: a pre-claim-protocol
            # root, or a displaced holder that outraced the claim.  The
            # higher fence is the live owner's; ties break on digest so
            # every scanner resolves identically.
            if (record.fence, digest) > (rival[0].fence, rival[1]):
                by_seq[seq] = (record, digest, path)
                loser = rival[2]
            else:
                loser = path
            self._quarantine(loser, "duplicate sequence", quarantined, quarantine)
        records = []
        max_fence = 0
        for seq in sorted(by_seq):
            record, digest, path = by_seq[seq]
            if record.fence < max_fence:
                self._quarantine(
                    path,
                    "fenced late write (fence %d after %d)"
                    % (record.fence, max_fence),
                    quarantined,
                    quarantine,
                )
                continue
            max_fence = record.fence
            records.append(record)
        self._next_seq = self._adopted_seq()
        return records, quarantined

    def recover(self, quarantine=True):
        """Full recovery: newest valid snapshot + tail fold.

        Returns ``(state, quarantined)`` where ``state`` is the
        :class:`~repro.service.jobs.FoldState` of the whole history —
        identical to folding every record ever written, but reading only
        the snapshot plus the records beyond its high-water mark.  A torn
        newest snapshot is quarantined and the previous one takes over;
        with no valid snapshot at all, the fold runs from the surviving
        records alone.
        """
        base, quarantined = self._load_snapshot(quarantine)
        records, more = self.scan(quarantine)
        quarantined.extend(more)
        if base is not None:
            records = [record for record in records if record.seq > base.upto]
        state = fold_state(records, base=base)
        self._next_seq = max(self._next_seq or 0, state.upto + 1)
        return state, quarantined

    def _snapshots(self):
        """``(upto, name)`` of every snapshot on disk, newest first."""
        found = []
        try:
            names = os.listdir(self.dir)
        except OSError:
            names = []
        for name in names:
            parsed = parse_snapshot_name(name)
            if parsed is not None:
                found.append((parsed[0], name))
        found.sort(reverse=True)
        return found

    def _load_snapshot(self, quarantine=True):
        """Newest snapshot that verifies, falling back across torn ones."""
        quarantined = []
        for upto, name in self._snapshots():
            path = os.path.join(self.dir, name)
            digest = parse_snapshot_name(name)[1]
            try:
                with open(path, "rb") as handle:
                    body = handle.read()
            except OSError as exc:
                self._quarantine(path, "unreadable: %s" % exc, quarantined, quarantine)
                continue
            if hashlib.sha1(body).hexdigest() != digest:
                self._quarantine(
                    path, "snapshot hash mismatch (torn?)", quarantined, quarantine
                )
                continue
            try:
                data = json.loads(body.decode("utf-8"))
                state = FoldState.from_dict(data["state"])
            except (ValueError, KeyError, TypeError):
                self._quarantine(
                    path, "malformed snapshot", quarantined, quarantine
                )
                continue
            if state.upto < 0:
                state.upto = upto
            return state, quarantined
        return None, quarantined

    def compact(self):
        """Fold history into a snapshot; delete what the *previous* one covers.

        Returns the new snapshot's path (None for an empty journal).  The
        snapshot write is atomic; the ``compact`` marker record after it
        makes the event visible to tailing watchers (and gives the fault
        plan a commit point to kill at).  Deletion lags one snapshot: only
        records at or below the previous snapshot's high-water mark go,
        and the two newest snapshots stay — so at every instant, disk
        holds a complete view through either the newest snapshot or its
        predecessor.
        """
        state, _ = self.recover(quarantine=True)
        if state.upto < 0:
            return None
        body = json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "upto": state.upto,
                "state": state.to_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        digest = hashlib.sha1(body).hexdigest()
        path = os.path.join(self.dir, snapshot_name(state.upto, digest))
        atomic_write_bytes(path, body, fsync=self.fsync)
        if self.fsync:
            _fsync_dir(self.dir)
        self.append(
            None, "compact", {"upto": state.upto, "snapshot": os.path.basename(path)}
        )
        snapshots = self._snapshots()
        for upto, name in snapshots[2:]:
            try:
                os.unlink(os.path.join(self.dir, name))
            except OSError:
                pass
        covered = snapshots[1][0] if len(snapshots) > 1 else -1
        if covered >= 0:
            self._prune(covered)
        return path

    def _prune(self, covered):
        """Delete records and seq claims at or below ``covered`` (idempotent)."""
        try:
            names = os.listdir(self.dir)
        except OSError:
            names = []
        for name in names:
            parsed = parse_record_name(name)
            if parsed is not None and parsed[0] <= covered:
                try:
                    os.unlink(os.path.join(self.dir, name))
                except OSError:
                    pass
        try:
            names = os.listdir(self.seq_dir)
        except OSError:
            names = []
        for name in names:
            try:
                seq = int(name)
            except ValueError:
                continue
            if seq <= covered:
                try:
                    os.unlink(os.path.join(self.seq_dir, name))
                except OSError:
                    pass

    def _quarantine(self, path, reason, quarantined, move):
        name = os.path.basename(path)
        quarantined.append((name, reason))
        if not move:
            return
        target = os.path.join(self.quarantine_dir, name)
        try:
            os.replace(path, target)
        except OSError:
            pass
