"""Lease-based service-root ownership with fencing epochs.

The campaign service root is exclusive: one orchestrator owns it at a
time.  On a single host, pid-liveness (``os.kill(pid, 0)``) decides when
a dead owner's lock may be stolen — but across hosts sharing the root
over a network filesystem, liveness is unknowable: a paused VM or a
partitioned host looks exactly like a dead one.  :class:`ServiceLease`
replaces liveness with *time*: the lock carries an expiry that the
holder must keep renewing, and a standby actor may steal the root only
once that expiry passes.

The dangerous moment is *after* a steal: the old holder may wake up
(VM un-paused, partition healed) still believing it owns the root, and
flush writes that were in flight when it froze.  Each acquisition is
therefore stamped with a **fencing epoch** — strictly greater than every
epoch the root has ever seen, tracked in the ``FENCE`` file and in the
lock payload itself — and every journal record the holder commits
carries its epoch.  A fenced holder's late writes are then *detectable*:
its next :meth:`renew` / :meth:`check` raises :class:`LeaseLostError`,
and any record it managed to slip in before noticing is quarantined by
the journal's fence-monotonicity scan (see
:meth:`repro.service.journal.JobJournal.scan`).

Clock skew between hosts eats into the safety margin rather than
breaking it: the holder renews at ``ttl/3`` intervals, so a skew
smaller than ``2*ttl/3`` never produces a false steal, and a false
steal is *still safe* — merely disruptive — because fencing catches the
displaced holder.  The ``clock-skew`` fault action exists to prove
exactly that.
"""

import logging
import os
import time

from ..fuzzer import faultinject
from ..fuzzer.store import (
    LOCK_NAME,
    StoreFencedError,
    StoreLockError,
    acquire_pidfile_lock,
    atomic_write_bytes,
    format_lock_payload,
    lock_host,
    read_lock_record,
    release_pidfile_lock,
    renew_pidfile_lock,
)

logger = logging.getLogger("repro.service.lease")

# Fencing-epoch high-water mark, kept beside the lock so epochs stay
# monotonic even across clean releases (which delete the lock file).
FENCE_NAME = "FENCE"


class LeaseLostError(Exception):
    """This actor's lease on the root expired or was stolen.

    The only correct reaction is to stop writing: a successor with a
    higher fencing epoch may already own the root, and anything this
    actor commits from now on is a *late write* the successor's scan
    will quarantine.
    """

    def __init__(self, root, owner=None):
        self.root = root
        self.owner = owner
        super().__init__(
            "%s: lease lost%s"
            % (root, "" if owner is None else " — the root now names %s" % (owner,))
        )


def read_fence(root):
    """The root's fencing high-water mark (0 for a never-leased root)."""
    try:
        with open(os.path.join(root, FENCE_NAME), "rb") as handle:
            return int(handle.read().decode("ascii", "replace").strip() or 0)
    except (OSError, ValueError):
        return 0


class ServiceLease:
    """Exclusive, renewable, fenced ownership of one service root.

    ``ttl=None`` degrades to the classic no-lease lock (single-host
    semantics, pid-liveness staleness) while still advancing the fencing
    epoch — so a root can move freely between leased and unleased
    owners.  ``service_index`` is this actor's coordinate in the fault
    plan; the fault incarnation coordinate is ``epoch - 1``, i.e. 0
    targets the root's first-ever holder.
    """

    RENEW_FRACTION = 3  # renew every ttl/3 — two misses of margin

    def __init__(self, root, ttl=None, service_index=0, fsync=True):
        self.root = root
        self.ttl = ttl
        self.service_index = service_index
        self.fsync = fsync
        self.epoch = 0
        self.skew = 0.0  # clock-skew fault offset, seconds
        self.held = False
        self.frozen = False  # lease-expire fired: stop renewing, look dead
        self.renewals = 0  # fault clock: n-th renewal attempt
        self.renewed_at = 0.0

    # -- clocks ----------------------------------------------------------

    def now(self):
        """This actor's lease clock (wall time plus injected skew)."""
        return time.time() + self.skew

    def renew_interval(self):
        """Seconds between renewals (None when unleased)."""
        if self.ttl is None:
            return None
        return self.ttl / float(self.RENEW_FRACTION)

    # -- lifecycle -------------------------------------------------------

    def acquire(self, wait=None, poll=0.05):
        """Take the root, fenced above every epoch it has ever seen.

        ``wait=None`` raises :class:`StoreLockError` immediately when a
        live owner holds the root; ``wait=<secs>`` keeps retrying until
        the owner releases — or its lease expires and the steal goes
        through — which is exactly the standby actor's posture.
        """
        deadline = None if wait is None else time.monotonic() + float(wait)
        while True:
            epoch = self._next_epoch()
            try:
                acquire_pidfile_lock(
                    self.root,
                    fsync=self.fsync,
                    ttl=self.ttl,
                    epoch=epoch,
                    clock=self.now,
                )
            except StoreLockError:
                if deadline is None or time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
                continue
            self.epoch = epoch
            self.held = True
            self.frozen = False
            self.renewals = 0
            self.renewed_at = time.monotonic()
            # Bump the high-water mark *before* doing any work under the
            # lease: even if this actor dies instantly, no later holder
            # can reuse this epoch.
            atomic_write_bytes(
                os.path.join(self.root, FENCE_NAME),
                b"%d\n" % epoch,
                fsync=self.fsync,
            )
            fault = faultinject.active_plan().match(
                "lease", self.service_index, 0, self.epoch - 1
            )
            if fault is not None:
                faultinject.fire_lease_fault(fault, self)
            return self

    def _next_epoch(self):
        """One above everything this root has seen: FENCE and lock alike."""
        fence = read_fence(self.root)
        record = read_lock_record(os.path.join(self.root, LOCK_NAME))
        observed = 0
        if record is not None and not record.legacy:
            observed = record.epoch
        return max(fence, observed) + 1

    def renew(self, force=False):
        """Extend the lease if its renewal interval has elapsed.

        Returns True when the on-disk expiry was pushed out.  Raises
        :class:`LeaseLostError` when the lock no longer names this
        actor — the lease expired and a successor stole it.  A lease hit
        by ``lease-expire`` goes silent instead: it stops renewing (so a
        standby sees it expire) and keeps reporting success until
        :meth:`check` discovers the fencing.
        """
        if not self.held:
            raise LeaseLostError(self.root)
        if self.ttl is None:
            return False
        interval = self.renew_interval()
        if not force and time.monotonic() - self.renewed_at < interval:
            return False
        self.renewals += 1
        fault = faultinject.active_plan().match(
            "lease", self.service_index, self.renewals, self.epoch - 1
        )
        if fault is not None and faultinject.fire_lease_fault(fault, self):
            return False
        if self.frozen:
            return False
        try:
            renew_pidfile_lock(
                self.root,
                self.ttl,
                epoch=self.epoch,
                clock=self.now,
                fsync=self.fsync,
            )
        except StoreFencedError as exc:
            self.held = False
            raise LeaseLostError(self.root, exc.owner)
        self.renewed_at = time.monotonic()
        return True

    def check(self):
        """Verify this actor still owns an unexpired lease; else raise.

        Called before every journal commit: it narrows the fencing
        window from "until the next renewal" down to "between this check
        and the write" — the residual race the journal's fence-stamped
        records close completely.
        """
        if not self.held:
            raise LeaseLostError(self.root)
        record = read_lock_record(os.path.join(self.root, LOCK_NAME))
        if record is None or not record.names(
            lock_host(), os.getpid(), self.epoch
        ):
            self.held = False
            raise LeaseLostError(self.root, record)
        if record.expired(self.now()):
            self.held = False
            raise LeaseLostError(self.root, record)
        return True

    def release(self):
        """Give the root up cleanly (ownership-checked, idempotent)."""
        if not self.held:
            return
        self.held = False
        release_pidfile_lock(self.root, epoch=self.epoch)

    # -- fault hooks -----------------------------------------------------

    def force_expire(self):
        """``lease-expire`` fault: look dead without knowing it.

        Rewrites the on-disk expiry into the past and freezes renewal,
        so from the outside the lease has lapsed (a standby's staleness
        check passes and the steal goes through) while this actor keeps
        running until its next :meth:`check` raises.
        """
        self.frozen = True
        lock_path = os.path.join(self.root, LOCK_NAME)
        record = read_lock_record(lock_path)
        if record is None or not record.names(
            lock_host(), os.getpid(), self.epoch
        ):
            return
        atomic_write_bytes(
            lock_path,
            format_lock_payload(
                lock_host(), os.getpid(), self.epoch, self.now() - 3600.0
            ).encode("ascii"),
            fsync=self.fsync,
        )
        logger.warning(
            "%s: lease force-expired by fault injection (epoch %d)",
            self.root,
            self.epoch,
        )

    def owner(self):
        """Whoever the lock currently names (None for an unlocked root)."""
        return read_lock_record(os.path.join(self.root, LOCK_NAME))

    def __repr__(self):
        return "ServiceLease(%s, epoch=%d, ttl=%s, held=%s)" % (
            self.root,
            self.epoch,
            self.ttl,
            self.held,
        )
