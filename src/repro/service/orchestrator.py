"""The asyncio campaign service: schedule, supervise, survive.

:class:`CampaignService` runs many concurrent campaigns (jobs) across a
bounded pool of worker processes.  Robustness is the design center:

- **Durability.**  Every state transition is journaled before it takes
  effect in memory (:mod:`.journal` + the shared fold in :mod:`.jobs`),
  so the in-memory job table can always be reconstructed by a restart.
- **Recovery.**  On open, the service scans the journal (quarantining
  torn records), folds the job table, *reaps orphaned worker processes*
  left behind by a hard kill, requeues every in-flight job (no retry
  charge — the job did nothing wrong), rebuilds the per-tenant retry
  counters and the crash-dedupe index from disk, and stamps a new epoch
  record.  Jobs then resume from their checkpoint or store slice.
- **Deadlines.**  Replies are awaited with ``recv_with_deadline``
  semantics: a missing heartbeat raises the typed
  :class:`~repro.service.jobs.HeartbeatTimeoutError`, a blown per-attempt
  wall budget :class:`~repro.service.jobs.WallBudgetError`.
- **Budgets.**  Transient failures retry with
  :class:`~repro.fuzzer.supervisor.RestartPolicy` backoff, bounded by
  per-job *and* per-tenant retry budgets; exhaustion degrades the job to
  the terminal ``DEGRADED`` state with a machine-readable
  :class:`~repro.service.jobs.DegradeReason` — never lost, never retried
  forever.  Deterministic failures (task errors, checkpoint corruption
  under ``require_checkpoint``) degrade immediately.
- **Load shedding.**  An overload circuit breaker watches the pending
  backlog with hysteresis and pauses low-priority admissions (typed
  :class:`~repro.service.jobs.OverloadError`) instead of falling over.
"""

import asyncio
import json
import os
import signal
import time

from repro.fuzzer.checkpoint import CheckpointCorruptError, CheckpointError
from repro.fuzzer.parallel import _mp_context
from repro.fuzzer.store import (
    CRASH_DIR,
    acquire_pidfile_lock,
    parse_artifact_name,
    read_pidfile_owner,
    release_pidfile_lock,
    _pid_alive,
)
from repro.fuzzer.supervisor import (
    RestartPolicy,
    WorkerDeadError,
    WorkerError,
    WorkerTaskError,
    failure_category,
)
from repro.service.dedupe import CrashDedupe
from repro.service.jobs import (
    PENDING,
    RUNNING,
    AdmissionError,
    HeartbeatTimeoutError,
    JobSpec,
    OverloadError,
    TenantPolicy,
    WallBudgetError,
    apply_event,
    fold_records,
)
from repro.service.journal import JobJournal
from repro.service.worker import STORE_DIR, job_worker_main
from repro.telemetry.bus import ServiceEvent, WorkerDroppedEvent, get_bus

JOBS_DIR = "jobs"

#: Deterministic failure categories that must not be retried: a restart
#: would only reproduce them more slowly (cf. WorkerTaskError in PR 2).
_NO_RETRY_CATEGORIES = ("task-error", "checkpoint-corrupt")


def load_job_table(root):
    """Read-only journal fold: ``(jobs, epochs, conflicts, quarantined)``.

    Used by ``repro job`` for inspection — never quarantines or appends,
    so it is safe to run against a live service's directory.
    """
    journal = JobJournal(root, fsync=False)
    records, quarantined = journal.scan(quarantine=False)
    jobs, epochs, conflicts = fold_records(records)
    return jobs, epochs, conflicts, quarantined


def list_job_crashes(jobs_root, job_id):
    """Every crash artifact of one job, with its triage sidecar.

    Pure disk scan — shared by the live service's ``fetch_crashes`` and
    the read-only ``repro job crashes`` CLI.
    """
    crashes = []
    store_root = os.path.join(jobs_root, job_id, STORE_DIR)
    try:
        workers = sorted(os.listdir(store_root))
    except OSError:
        workers = []
    for worker in workers:
        crash_dir = os.path.join(store_root, worker, CRASH_DIR)
        try:
            names = sorted(os.listdir(crash_dir))
        except OSError:
            continue
        for name in names:
            if name.endswith(".report.txt") or name.endswith(".triage.json"):
                continue
            parsed = parse_artifact_name(name)
            if parsed is None or parsed[1] is None:
                continue
            path = os.path.join(crash_dir, name)
            triage = None
            try:
                with open(path + ".triage.json", encoding="utf-8") as handle:
                    triage = json.load(handle)
            except (OSError, ValueError):
                pass
            crashes.append({"sig": parsed[1], "path": path, "triage": triage})
    return crashes


def submit_offline(root, **spec_kwargs):
    """Journal a submission without running a service (``repro job submit``).

    Takes the service root lock for the duration (a live service owns its
    root; submitting under it would race the scheduler — the lock turns
    that into a typed :class:`~repro.fuzzer.store.StoreLockError`).
    """
    root = os.path.abspath(root)
    os.makedirs(root, exist_ok=True)
    acquire_pidfile_lock(root)
    try:
        journal = JobJournal(root)
        records, _ = journal.scan(quarantine=False)
        jobs, _, _ = fold_records(records)
        index = max(
            (record.spec.index for record in jobs.values()), default=-1
        ) + 1
        spec = JobSpec(job_id="j%06d" % index, index=index, **spec_kwargs)
        journal.append(spec.job_id, "submit", spec.to_dict())
        return spec.job_id
    finally:
        release_pidfile_lock(root)


class CampaignService:
    """Crash-safe orchestrator over a pool of job worker processes."""

    def __init__(
        self,
        root,
        max_workers=2,
        policies=(),
        restart_policy=None,
        heartbeat_timeout=30.0,
        wall_budget=600.0,
        shed_high=None,
        shed_low=None,
        service_index=0,
        bus=None,
        fsync=True,
    ):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, JOBS_DIR)
        os.makedirs(self.jobs_dir, exist_ok=True)
        acquire_pidfile_lock(self.root, fsync=fsync)
        self._locked = True
        self.max_workers = int(max_workers)
        self.policies = {policy.name: policy for policy in policies}
        self.default_policy = self.policies.get("default") or TenantPolicy("default")
        self.restart_policy = (
            restart_policy
            if restart_policy is not None
            else RestartPolicy(max_restarts=2, backoff_base=0.05, backoff_max=1.0)
        )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wall_budget = float(wall_budget)
        self.shed_high = shed_high if shed_high is not None else max(4 * self.max_workers, 8)
        self.shed_low = shed_low if shed_low is not None else 2 * self.max_workers
        self.bus = bus if bus is not None else get_bus()
        self.fsync = fsync
        self.journal = JobJournal(
            self.root, fsync=fsync, service_index=service_index
        )
        self.jobs = {}
        self.epoch = 0
        self.fold_conflicts = 0
        self.quarantined = []
        self.dedupe = CrashDedupe()
        self.breaker_open = False
        self._tenant_retries = {}
        self._claimed = set()  # job ids a runner coroutine currently owns
        self._procs = {}  # job id -> live worker Process
        self._recover()

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Kill live workers and release the root lock (idempotent)."""
        for job_id in list(self._procs):
            self._kill_worker(job_id)
        if self._locked:
            release_pidfile_lock(self.root)
            self._locked = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _recover(self):
        """The recovery ladder: scan, fold, reap, requeue, rebuild, stamp."""
        records, quarantined = self.journal.scan()
        self.quarantined = quarantined
        self.jobs, self.epoch, self.fold_conflicts = fold_records(records)
        # This life's fault-injection incarnation is its epoch: faults with
        # the default incarnation 0 fire only in the first service life, so
        # a restarted orchestrator runs clean unless explicitly targeted.
        self.journal.epoch = self.epoch
        requeued = 0
        for record in self.jobs.values():
            if record.state == RUNNING:
                # The attempt died with the previous orchestrator.  Reap any
                # orphaned worker still holding the job's store lock, then
                # requeue with no retry charge.
                self._reap_orphan(record)
                self._journal(
                    record.spec.job_id,
                    "recover",
                    {"note": "requeued after service restart (epoch %d)" % self.epoch},
                )
                requeued += 1
        self._tenant_retries = {}
        for record in self.jobs.values():
            tenant = record.spec.tenant
            self._tenant_retries[tenant] = (
                self._tenant_retries.get(tenant, 0) + record.retries_used
            )
        self.dedupe.rebuild(self.jobs_dir)
        self._journal(None, "epoch", {"epoch": self.epoch, "pid": os.getpid()})
        self.bus.publish(
            ServiceEvent(
                "recover",
                detail="epoch %d: %d job(s), %d requeued, %d quarantined"
                % (self.epoch, len(self.jobs), requeued, len(quarantined)),
                data={
                    "epoch": self.epoch,
                    "jobs": len(self.jobs),
                    "requeued": requeued,
                    "quarantined": len(quarantined),
                    "conflicts": self.fold_conflicts,
                },
            )
        )

    def _reap_orphan(self, record):
        """SIGKILL a worker process that outlived the previous service.

        ``orch-kill`` dies via ``os._exit``, which skips multiprocessing's
        atexit cleanup — daemon children survive as orphans, still holding
        their store LOCK and still writing.  Two writers on one slice is
        exactly what the store lock forbids, so the orphan dies first.
        """
        candidates = set()
        if record.pid:
            candidates.add(int(record.pid))
        lock_owner = read_pidfile_owner(
            os.path.join(self._job_dir(record.spec.job_id), STORE_DIR, "main", "LOCK")
        )
        if lock_owner:
            candidates.add(lock_owner)
        for pid in candidates:
            if pid == os.getpid() or not _pid_alive(pid):
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                continue
            deadline = time.monotonic() + 5.0
            while _pid_alive(pid) and time.monotonic() < deadline:
                time.sleep(0.01)

    # -- journaled transitions -------------------------------------------------

    def _journal(self, job_id, event, payload):
        """Durably journal ``event`` first, then apply it to the table."""
        self.journal.append(job_id, event, payload)
        conflict = apply_event(self.jobs, job_id, event, payload)
        self.fold_conflicts += conflict
        return conflict

    # -- job-queue API ---------------------------------------------------------

    def submit(
        self,
        subject,
        config="path",
        run_seed=0,
        tenant="default",
        priority=0,
        budget_ticks=60_000,
        max_retries=None,
        heartbeat_timeout=None,
        wall_budget=None,
        require_checkpoint=False,
    ):
        """Admit one campaign; returns its job id.

        Raises :class:`AdmissionError` when the tenant's pending quota is
        full and :class:`OverloadError` for low-priority submissions while
        the overload breaker is open.
        """
        policy = self._policy(tenant)
        pending = [
            record
            for record in self.jobs.values()
            if record.spec.tenant == tenant and record.state == PENDING
        ]
        if len(pending) >= policy.max_pending:
            raise AdmissionError(
                "tenant %r has %d pending job(s) (quota %d)"
                % (tenant, len(pending), policy.max_pending)
            )
        if self.breaker_open and priority <= 0:
            raise OverloadError(
                "overload breaker open (backlog %d >= %d); "
                "low-priority admissions paused" % (self._backlog(), self.shed_high)
            )
        index = max(
            (record.spec.index for record in self.jobs.values()), default=-1
        ) + 1
        spec = JobSpec(
            job_id="j%06d" % index,
            subject=subject,
            config=config,
            run_seed=run_seed,
            tenant=tenant,
            priority=priority,
            budget_ticks=budget_ticks,
            max_retries=(
                self.restart_policy.max_restarts
                if max_retries is None
                else max_retries
            ),
            heartbeat_timeout=(
                self.heartbeat_timeout
                if heartbeat_timeout is None
                else heartbeat_timeout
            ),
            wall_budget=self.wall_budget if wall_budget is None else wall_budget,
            require_checkpoint=require_checkpoint,
            index=index,
        )
        self._journal(spec.job_id, "submit", spec.to_dict())
        self.bus.publish(
            ServiceEvent(
                "submit",
                job=spec.job_id,
                tenant=tenant,
                detail="%s/%s#%d prio=%d" % (subject, config, run_seed, priority),
            )
        )
        self._update_breaker()
        return spec.job_id

    def status(self, job_id):
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job %r" % (job_id,))
        return record.snapshot()

    def cancel(self, job_id):
        """Cancel a job; returns False if it already reached a terminal state."""
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job %r" % (job_id,))
        if record.terminal():
            return False
        self._journal(job_id, "cancel", {})
        self._kill_worker(job_id)
        self.bus.publish(
            ServiceEvent("cancel", job=job_id, tenant=record.spec.tenant)
        )
        return True

    def fetch_crashes(self, job_id):
        """Every crash artifact of one job, with its triage sidecar."""
        if job_id not in self.jobs:
            raise KeyError("unknown job %r" % (job_id,))
        return list_job_crashes(self.jobs_dir, job_id)

    def crash_signatures(self):
        """Cross-campaign deduped crash signatures -> sighting counts."""
        return self.dedupe.counts()

    # -- scheduling ------------------------------------------------------------

    async def run_until_idle(self):
        """Drive every admitted job to a terminal state, then return."""
        tasks = {}
        try:
            while True:
                self._update_breaker()
                for record in self._dispatchable():
                    job_id = record.spec.job_id
                    self._claimed.add(job_id)
                    tasks[job_id] = asyncio.ensure_future(self._run_job(record))
                for job_id, task in list(tasks.items()):
                    if task.done():
                        del tasks[job_id]
                        await task  # surface scheduler bugs, not swallow them
                if not tasks and not any(
                    record.state in (PENDING, RUNNING)
                    for record in self.jobs.values()
                ):
                    return self.summary()
                await asyncio.sleep(0.005)
        finally:
            for task in tasks.values():
                task.cancel()

    def summary(self):
        states = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        data = {"jobs": len(self.jobs), "states": states}
        data.update({"dedupe": self.dedupe.summary()})
        return data

    def _dispatchable(self):
        """Pending jobs eligible to start now, highest priority first."""
        slots = self.max_workers - len(self._claimed)
        if slots <= 0:
            return []
        running_by_tenant = {}
        for job_id in self._claimed:
            tenant = self.jobs[job_id].spec.tenant
            running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
        eligible = sorted(
            (
                record
                for record in self.jobs.values()
                if record.state == PENDING
                and record.spec.job_id not in self._claimed
            ),
            key=lambda record: (-record.spec.priority, record.spec.index),
        )
        picked = []
        for record in eligible:
            if slots <= 0:
                break
            tenant = record.spec.tenant
            if running_by_tenant.get(tenant, 0) >= self._policy(tenant).max_running:
                continue
            running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
            slots -= 1
            picked.append(record)
        return picked

    async def _run_job(self, record):
        """One job's attempt loop: spawn, drive, retry-or-degrade."""
        spec = record.spec
        try:
            while True:
                incarnation = record.attempts
                proc, conn = self._spawn(spec, incarnation)
                self._journal(
                    spec.job_id, "start", {"attempt": incarnation, "pid": proc.pid}
                )
                self.bus.publish(
                    ServiceEvent(
                        "start",
                        job=spec.job_id,
                        tenant=spec.tenant,
                        detail="attempt %d pid %d" % (incarnation, proc.pid),
                    )
                )
                try:
                    summary = await self._drive(record, conn)
                except (WorkerError, CheckpointError) as exc:
                    self._kill_worker(spec.job_id)
                    if record.terminal():
                        return  # cancelled under our feet; already journaled
                    if not await self._charge_retry(record, exc):
                        return
                    continue
                self._kill_worker(spec.job_id)
                self._journal(spec.job_id, "done", {"summary": summary})
                self.dedupe.rescan_job(self.jobs_dir, spec.job_id)
                self.bus.publish(
                    ServiceEvent(
                        "done",
                        job=spec.job_id,
                        tenant=spec.tenant,
                        detail="%d execs, %d crash sig(s)"
                        % (summary.get("execs", 0), len(summary.get("crash_sigs", ()))),
                        data={"execs": summary.get("execs", 0)},
                    )
                )
                return
        finally:
            self._claimed.discard(spec.job_id)

    async def _charge_retry(self, record, exc):
        """Charge a failed attempt; True to retry, False once degraded."""
        spec = record.spec
        category = failure_category(exc)
        detail = "%s: %s" % (type(exc).__name__, exc)
        if category in _NO_RETRY_CATEGORIES:
            self._degrade(record, category, detail)
            return False
        tenant_used = self._tenant_retries.get(spec.tenant, 0)
        tenant_budget = self._policy(spec.tenant).retry_budget
        if record.retries_used >= spec.max_retries:
            self._degrade(
                record,
                "retry-budget",
                "retry budget (%d) exhausted; last failure %s — %s"
                % (spec.max_retries, category, detail),
            )
            return False
        if tenant_used >= tenant_budget:
            self._degrade(
                record,
                "retry-budget",
                "tenant %r retry budget (%d) exhausted; last failure %s — %s"
                % (spec.tenant, tenant_budget, category, detail),
            )
            return False
        retries = record.retries_used + 1
        self._tenant_retries[spec.tenant] = tenant_used + 1
        self._journal(
            spec.job_id,
            "retry",
            {"retries_used": retries, "reason": detail, "category": category},
        )
        delay = self.restart_policy.delay(retries)
        self.bus.publish(
            ServiceEvent(
                "retry",
                job=spec.job_id,
                tenant=spec.tenant,
                detail="#%d after %.2gs: %s" % (retries, delay, detail),
                data={"retries_used": retries, "category": category},
            )
        )
        if delay > 0:
            await asyncio.sleep(delay)
        return True

    def _degrade(self, record, category, detail):
        spec = record.spec
        self._journal(
            spec.job_id, "degrade", {"category": category, "detail": detail}
        )
        self.bus.publish(
            ServiceEvent(
                "degrade",
                job=spec.job_id,
                tenant=spec.tenant,
                detail="%s: %s" % (category, detail),
                data={"category": category},
            )
        )
        # Mirror the richer campaign-level degraded event: same cause/detail
        # fields, so one dashboard consumes both.
        self.bus.publish(
            WorkerDroppedEvent(
                spec.job_id, spec.index, detail, cause=category, detail=category
            )
        )

    async def _drive(self, record, conn):
        """Await heartbeats until the final result, deadline-guarded."""
        spec = record.spec
        loop = asyncio.get_event_loop()
        wall_end = loop.time() + spec.wall_budget
        while True:
            message = await self._recv(conn, spec, wall_end)
            if message[0] == "heartbeat":
                record.progress = message[1]
                continue
            if message[0] == "done":
                return message[1]
            if message[0] == "error":
                category, detail = message[1], message[2]
                if category == "checkpoint-corrupt":
                    raise CheckpointCorruptError(
                        "job %s refused its checkpoint: %s" % (spec.job_id, detail)
                    )
                raise WorkerTaskError(spec.index, "failed: %s" % (detail,))
            raise WorkerTaskError(
                spec.index, "sent unexpected message %r" % (message[0],)
            )

    async def _recv(self, conn, spec, wall_end):
        """One reply with ``recv_with_deadline`` semantics, non-blocking.

        Polls the pipe cooperatively (the event loop keeps scheduling other
        jobs) and raises the typed timeout errors: heartbeat silence is a
        :class:`HeartbeatTimeoutError`, the attempt's wall budget a
        :class:`WallBudgetError`, EOF a dead worker.
        """
        loop = asyncio.get_event_loop()
        heartbeat_end = loop.time() + spec.heartbeat_timeout
        while True:
            try:
                if conn.poll(0):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDeadError(spec.index, "died mid-job (%s)" % (exc,))
            now = loop.time()
            if now >= wall_end:
                raise WallBudgetError(
                    spec.index,
                    "exceeded its %.1fs wall budget" % spec.wall_budget,
                )
            if now >= heartbeat_end:
                raise HeartbeatTimeoutError(
                    spec.index,
                    "sent no heartbeat within %.1fs" % spec.heartbeat_timeout,
                )
            await asyncio.sleep(0.01)

    # -- workers ---------------------------------------------------------------

    def _job_dir(self, job_id):
        return os.path.join(self.jobs_dir, job_id)

    def _spawn(self, spec, incarnation):
        job_dir = self._job_dir(spec.job_id)
        os.makedirs(job_dir, exist_ok=True)
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=job_worker_main,
            args=(child_conn, spec.to_dict(), job_dir, incarnation),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[spec.job_id] = (proc, parent_conn)
        return proc, parent_conn

    def _kill_worker(self, job_id):
        entry = self._procs.pop(job_id, None)
        if entry is None:
            return
        proc, conn = entry
        try:
            conn.close()
        except Exception:
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join(5)
        if proc.is_alive():
            proc.kill()
            proc.join(5)

    # -- load shedding ---------------------------------------------------------

    def _policy(self, tenant):
        return self.policies.get(tenant, self.default_policy)

    def _backlog(self):
        return sum(1 for record in self.jobs.values() if record.state == PENDING)

    def _update_breaker(self):
        """Backlog hysteresis: open at ``shed_high``, close at ``shed_low``."""
        backlog = self._backlog()
        if not self.breaker_open and backlog >= self.shed_high:
            self.breaker_open = True
            self.bus.publish(
                ServiceEvent(
                    "breaker",
                    detail="open: backlog %d >= %d" % (backlog, self.shed_high),
                    data={"state": "open", "backlog": backlog},
                )
            )
        elif self.breaker_open and backlog <= self.shed_low:
            self.breaker_open = False
            self.bus.publish(
                ServiceEvent(
                    "breaker",
                    detail="closed: backlog %d <= %d" % (backlog, self.shed_low),
                    data={"state": "closed", "backlog": backlog},
                )
            )
