"""The asyncio campaign service: schedule, supervise, survive.

:class:`CampaignService` runs many concurrent campaigns (jobs) across a
bounded pool of worker processes.  Robustness is the design center:

- **Durability.**  Every state transition is journaled before it takes
  effect in memory (:mod:`.journal` + the shared fold in :mod:`.jobs`),
  so the in-memory job table can always be reconstructed by a restart.
- **Recovery.**  On open, the service scans the journal (quarantining
  torn records), folds the job table, *reaps orphaned worker processes*
  left behind by a hard kill, requeues every in-flight job (no retry
  charge — the job did nothing wrong), rebuilds the per-tenant retry
  counters and the crash-dedupe index from disk, and stamps a new epoch
  record.  Jobs then resume from their checkpoint or store slice.
- **Deadlines.**  Replies are awaited with ``recv_with_deadline``
  semantics: a missing heartbeat raises the typed
  :class:`~repro.service.jobs.HeartbeatTimeoutError`, a blown per-attempt
  wall budget :class:`~repro.service.jobs.WallBudgetError`.
- **Budgets.**  Transient failures retry with
  :class:`~repro.fuzzer.supervisor.RestartPolicy` backoff, bounded by
  per-job *and* per-tenant retry budgets; exhaustion degrades the job to
  the terminal ``DEGRADED`` state with a machine-readable
  :class:`~repro.service.jobs.DegradeReason` — never lost, never retried
  forever.  Deterministic failures (task errors, checkpoint corruption
  under ``require_checkpoint``) degrade immediately.
- **Load shedding.**  An overload circuit breaker watches the pending
  backlog with hysteresis and pauses low-priority admissions (typed
  :class:`~repro.service.jobs.OverloadError`) instead of falling over.
"""

import asyncio
import json
import os
import signal
import time

from repro.fuzzer.checkpoint import CheckpointCorruptError, CheckpointError
from repro.fuzzer.parallel import _mp_context
from repro.fuzzer.store import (
    CRASH_DIR,
    StoreLockError,
    acquire_pidfile_lock,
    lock_host,
    parse_artifact_name,
    read_lock_record,
    release_pidfile_lock,
    _pid_alive,
)
from repro.fuzzer.supervisor import (
    RestartPolicy,
    WorkerDeadError,
    WorkerError,
    WorkerTaskError,
    failure_category,
)
from repro.service import intake
from repro.service.dedupe import CrashDedupe
from repro.service.jobs import (
    PENDING,
    RUNNING,
    AdmissionError,
    HeartbeatTimeoutError,
    JobSpec,
    OverloadError,
    TenantPolicy,
    WallBudgetError,
    apply_event,
)
from repro.service.journal import JobJournal, parse_record_name
from repro.service.lease import LeaseLostError, ServiceLease, read_fence
from repro.service.worker import STORE_DIR, job_worker_main
from repro.telemetry.bus import ServiceEvent, WorkerDroppedEvent, get_bus

JOBS_DIR = "jobs"

#: Deterministic failure categories that must not be retried: a restart
#: would only reproduce them more slowly (cf. WorkerTaskError in PR 2).
_NO_RETRY_CATEGORIES = ("task-error", "checkpoint-corrupt")


def load_service_state(root):
    """Read-only recovery view: ``(state, quarantined, pending_requests)``.

    Reads snapshot + tail exactly the way a restarting service would, but
    never quarantines, appends, or deletes — safe against a live root.
    ``pending_requests`` are verified intake request files not yet settled
    by a journaled record.
    """
    journal = JobJournal(root, fsync=False)
    state, quarantined = journal.recover(quarantine=False)
    requests, damaged = intake.scan_requests(root)
    quarantined = list(quarantined) + list(damaged)
    pending = [
        request
        for request in requests
        if request["nonce"] not in state.handled
    ]
    return state, quarantined, pending


def load_job_table(root):
    """Read-only journal fold: ``(jobs, epochs, conflicts, quarantined)``.

    Used by ``repro job`` for inspection — never quarantines or appends,
    so it is safe to run against a live service's directory.
    """
    state, quarantined, _ = load_service_state(root)
    return state.jobs, state.epochs, state.conflicts, quarantined


def list_job_crashes(jobs_root, job_id):
    """Every crash artifact of one job, with its triage sidecar.

    Pure disk scan — shared by the live service's ``fetch_crashes`` and
    the read-only ``repro job crashes`` CLI.
    """
    crashes = []
    store_root = os.path.join(jobs_root, job_id, STORE_DIR)
    try:
        workers = sorted(os.listdir(store_root))
    except OSError:
        workers = []
    for worker in workers:
        crash_dir = os.path.join(store_root, worker, CRASH_DIR)
        try:
            names = sorted(os.listdir(crash_dir))
        except OSError:
            continue
        for name in names:
            if name.endswith(".report.txt") or name.endswith(".triage.json"):
                continue
            parsed = parse_artifact_name(name)
            if parsed is None or parsed[1] is None:
                continue
            path = os.path.join(crash_dir, name)
            triage = None
            try:
                with open(path + ".triage.json", encoding="utf-8") as handle:
                    triage = json.load(handle)
            except (OSError, ValueError):
                pass
            crashes.append({"sig": parsed[1], "path": path, "triage": triage})
    return crashes


def submit_offline(root, **spec_kwargs):
    """Journal a submission (``repro job submit``), live root or stopped.

    A stopped root is submitted to directly: take the root lock, journal
    the ``submit`` record, release.  A *live* root (the lock is held by a
    running service) gets a request file instead (see
    :mod:`repro.service.intake`): the daemon's tail watcher re-checks
    admission and settles it.  Returns the job id on the direct path and
    the ``req-…`` nonce on the live path — callers can tell them apart by
    the prefix, and ``repro job status <nonce>`` resolves a settled nonce
    to its job.
    """
    root = os.path.abspath(root)
    os.makedirs(root, exist_ok=True)
    try:
        acquire_pidfile_lock(root)
    except StoreLockError:
        # A live service owns the root: hand the submission to its intake.
        return intake.submit_request(root, spec_kwargs)
    try:
        # Stamp the root's fence high-water mark: an offline submit after a
        # leased service life must not look like a fenced late write.
        journal = JobJournal(root, fence=read_fence(root))
        state, _ = journal.recover(quarantine=False)
        index = max(
            (record.spec.index for record in state.jobs.values()), default=-1
        ) + 1
        spec = JobSpec(job_id="j%06d" % index, index=index, **spec_kwargs)
        journal.append(spec.job_id, "submit", spec.to_dict())
        return spec.job_id
    finally:
        release_pidfile_lock(root)


def cancel_offline(root, job_id):
    """Cancel a job (``repro job cancel``), live root or stopped.

    Mirrors :func:`submit_offline`: a stopped root is journaled directly
    (returns True if the cancel took, False if the job was already
    terminal), a live root gets a ``cancel-request`` file (returns the
    ``req-…`` nonce).  Raises KeyError for an unknown job on the direct
    path — against a live root the daemon refuses instead.
    """
    root = os.path.abspath(root)
    try:
        acquire_pidfile_lock(root)
    except StoreLockError:
        return intake.cancel_request(root, job_id)
    try:
        journal = JobJournal(root, fence=read_fence(root))
        state, _ = journal.recover(quarantine=False)
        record = state.jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job %r" % (job_id,))
        if record.terminal():
            return False
        journal.append(job_id, "cancel", {})
        return True
    finally:
        release_pidfile_lock(root)


def compact_offline(root):
    """Compact a *stopped* root's journal (``repro job compact``).

    Takes the root lock (raises :class:`StoreLockError` if a service is
    live — a running daemon compacts on its own cadence), folds history
    into a snapshot, and prunes records the previous snapshot covers.
    Returns the snapshot path (None for an empty journal).
    """
    root = os.path.abspath(root)
    acquire_pidfile_lock(root)
    try:
        journal = JobJournal(root, fence=read_fence(root))
        return journal.compact()
    finally:
        release_pidfile_lock(root)


class CampaignService:
    """Crash-safe orchestrator over a pool of job worker processes."""

    def __init__(
        self,
        root,
        max_workers=2,
        policies=(),
        restart_policy=None,
        heartbeat_timeout=30.0,
        wall_budget=600.0,
        shed_high=None,
        shed_low=None,
        service_index=0,
        bus=None,
        fsync=True,
        lease_ttl=None,
        standby_wait=None,
        compact_after=0,
        poll_interval=0.25,
    ):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, JOBS_DIR)
        os.makedirs(self.jobs_dir, exist_ok=True)
        # Lease-based, fenced ownership of the root.  ttl=None keeps the
        # classic single-host semantics (pid-liveness staleness) while
        # still advancing the fencing epoch each life; a ttl makes the
        # root stealable by a standby once this holder stops renewing.
        self.lease = ServiceLease(
            self.root, ttl=lease_ttl, service_index=service_index, fsync=fsync
        )
        self.lease.acquire(wait=standby_wait)
        self._locked = True
        self.lease_ttl = lease_ttl
        self.compact_after = int(compact_after)
        self.poll_interval = float(poll_interval)
        self.max_workers = int(max_workers)
        self.policies = {policy.name: policy for policy in policies}
        self.default_policy = self.policies.get("default") or TenantPolicy("default")
        self.restart_policy = (
            restart_policy
            if restart_policy is not None
            else RestartPolicy(max_restarts=2, backoff_base=0.05, backoff_max=1.0)
        )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wall_budget = float(wall_budget)
        self.shed_high = shed_high if shed_high is not None else max(4 * self.max_workers, 8)
        self.shed_low = shed_low if shed_low is not None else 2 * self.max_workers
        self.bus = bus if bus is not None else get_bus()
        self.fsync = fsync
        self.journal = JobJournal(
            self.root,
            fsync=fsync,
            service_index=service_index,
            fence=self.lease.epoch,
            lease=self.lease,
        )
        self.jobs = {}
        self.epoch = 0
        self.fold_conflicts = 0
        self.quarantined = []
        self.handled_requests = {}  # settled intake nonces -> job id/None
        self.dedupe = CrashDedupe()
        self.breaker_open = False
        self.draining = False
        self._tenant_retries = {}
        self._claimed = set()  # job ids a runner coroutine currently owns
        self._procs = {}  # job id -> live worker Process
        self._seen_seqs = set()  # journal seqs this life wrote or folded
        self._records_since_compact = 0
        self._recover()

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Kill live workers and release the root lease (idempotent).

        A fenced service has nothing to release — the lease already names
        its successor, and :meth:`ServiceLease.release` knows not to
        touch a lock that no longer names this owner.
        """
        for job_id in list(self._procs):
            self._kill_worker(job_id)
        if self._locked:
            self.lease.release()
            self._locked = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _recover(self):
        """The recovery ladder: scan, fold, reap, requeue, rebuild, stamp.

        The scan reads snapshot + tail (compaction-aware) and quarantines
        damage *and* fenced late writes — our FENCE bump in
        ``ServiceLease.acquire`` happened before this, so any record a
        displaced predecessor slips in from here on is detectably stale.
        """
        state, quarantined = self.journal.recover()
        self.quarantined = quarantined
        self.jobs = state.jobs
        self.epoch = state.epochs
        self.fold_conflicts = state.conflicts
        self.handled_requests = dict(state.handled)
        self._seen_seqs = self._disk_seqs()
        # This life's fault-injection incarnation is its epoch: faults with
        # the default incarnation 0 fire only in the first service life, so
        # a restarted orchestrator runs clean unless explicitly targeted.
        self.journal.epoch = self.epoch
        requeued = 0
        for record in self.jobs.values():
            if record.state == RUNNING:
                # The attempt died with the previous orchestrator.  Reap any
                # orphaned worker still holding the job's store lock, then
                # requeue with no retry charge.
                self._reap_orphan(record)
                self._journal(
                    record.spec.job_id,
                    "recover",
                    {"note": "requeued after service restart (epoch %d)" % self.epoch},
                )
                requeued += 1
        self._tenant_retries = {}
        for record in self.jobs.values():
            tenant = record.spec.tenant
            self._tenant_retries[tenant] = (
                self._tenant_retries.get(tenant, 0) + record.retries_used
            )
        self.dedupe.rebuild(self.jobs_dir)
        self._journal(
            None,
            "epoch",
            {"epoch": self.epoch, "pid": os.getpid(), "fence": self.lease.epoch,
             "host": lock_host()},
        )
        self.bus.publish(
            ServiceEvent(
                "recover",
                detail="epoch %d (fence %d): %d job(s), %d requeued, %d quarantined"
                % (self.epoch, self.lease.epoch, len(self.jobs), requeued,
                   len(quarantined)),
                data={
                    "epoch": self.epoch,
                    "fence": self.lease.epoch,
                    "jobs": len(self.jobs),
                    "requeued": requeued,
                    "quarantined": len(quarantined),
                    "conflicts": self.fold_conflicts,
                },
            )
        )
        # Requests a dead daemon left unsettled are admitted (or refused)
        # now, before the scheduler starts — nothing waits for the pump.
        self._pump_intake()

    def _disk_seqs(self):
        """Every record seq currently on disk (post-quarantine = all folded)."""
        seqs = set()
        try:
            names = os.listdir(self.journal.dir)
        except OSError:
            names = []
        for name in names:
            parsed = parse_record_name(name)
            if parsed is not None:
                seqs.add(parsed[0])
        return seqs

    def _reap_orphan(self, record):
        """SIGKILL a worker process that outlived the previous service.

        ``orch-kill`` dies via ``os._exit``, which skips multiprocessing's
        atexit cleanup — daemon children survive as orphans, still holding
        their store LOCK and still writing.  Two writers on one slice is
        exactly what the store lock forbids, so the orphan dies first.

        Pids are only meaningful on this host: a foreign host's orphan
        cannot be signalled from here, so its slice lock is left to the
        lease-expiry steal when the respawned worker's store acquires it.
        """
        candidates = set()
        if record.pid and record.pid_host in (None, lock_host()):
            candidates.add(int(record.pid))
        lock = read_lock_record(
            os.path.join(self._job_dir(record.spec.job_id), STORE_DIR, "main", "LOCK")
        )
        if lock is not None and (lock.legacy or lock.host == lock_host()):
            candidates.add(lock.pid)
        for pid in candidates:
            if pid == os.getpid() or not _pid_alive(pid):
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                continue
            deadline = time.monotonic() + 5.0
            while _pid_alive(pid) and time.monotonic() < deadline:
                time.sleep(0.01)

    # -- journaled transitions -------------------------------------------------

    def _journal(self, job_id, event, payload):
        """Durably journal ``event`` first, then apply it to the table."""
        seq = self.journal.append(job_id, event, payload)
        self._seen_seqs.add(seq)
        self._records_since_compact += 1
        conflict = apply_event(self.jobs, job_id, event, payload)
        self.fold_conflicts += conflict
        return conflict

    # -- job-queue API ---------------------------------------------------------

    def submit(
        self,
        subject,
        config="path",
        run_seed=0,
        tenant="default",
        priority=0,
        budget_ticks=60_000,
        max_retries=None,
        heartbeat_timeout=None,
        wall_budget=None,
        require_checkpoint=False,
        request=None,
    ):
        """Admit one campaign; returns its job id.

        Raises :class:`AdmissionError` when the tenant's pending quota is
        full and :class:`OverloadError` for low-priority submissions while
        the overload breaker is open.  ``request`` names the intake nonce
        this submission settles (live ``repro job submit`` against the
        daemon) — it rides in the journal payload so the fold can prove
        the request was converted exactly once.
        """
        policy = self._policy(tenant)
        pending = [
            record
            for record in self.jobs.values()
            if record.spec.tenant == tenant and record.state == PENDING
        ]
        if len(pending) >= policy.max_pending:
            raise AdmissionError(
                "tenant %r has %d pending job(s) (quota %d)"
                % (tenant, len(pending), policy.max_pending)
            )
        if self.breaker_open and priority <= 0:
            raise OverloadError(
                "overload breaker open (backlog %d >= %d); "
                "low-priority admissions paused" % (self._backlog(), self.shed_high)
            )
        index = max(
            (record.spec.index for record in self.jobs.values()), default=-1
        ) + 1
        spec = JobSpec(
            job_id="j%06d" % index,
            subject=subject,
            config=config,
            run_seed=run_seed,
            tenant=tenant,
            priority=priority,
            budget_ticks=budget_ticks,
            max_retries=(
                self.restart_policy.max_restarts
                if max_retries is None
                else max_retries
            ),
            heartbeat_timeout=(
                self.heartbeat_timeout
                if heartbeat_timeout is None
                else heartbeat_timeout
            ),
            wall_budget=self.wall_budget if wall_budget is None else wall_budget,
            require_checkpoint=require_checkpoint,
            index=index,
        )
        payload = spec.to_dict()
        if request:
            payload["request"] = request
            self.handled_requests[request] = spec.job_id
        self._journal(spec.job_id, "submit", payload)
        self.bus.publish(
            ServiceEvent(
                "submit",
                job=spec.job_id,
                tenant=tenant,
                detail="%s/%s#%d prio=%d" % (subject, config, run_seed, priority),
            )
        )
        self._update_breaker()
        return spec.job_id

    def status(self, job_id):
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job %r" % (job_id,))
        return record.snapshot()

    def cancel(self, job_id, request=None):
        """Cancel a job; returns False if it already reached a terminal state."""
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job %r" % (job_id,))
        if record.terminal():
            return False
        payload = {}
        if request:
            payload["request"] = request
            self.handled_requests[request] = job_id
        self._journal(job_id, "cancel", payload)
        self._kill_worker(job_id)
        self.bus.publish(
            ServiceEvent("cancel", job=job_id, tenant=record.spec.tenant)
        )
        return True

    def fetch_crashes(self, job_id):
        """Every crash artifact of one job, with its triage sidecar."""
        if job_id not in self.jobs:
            raise KeyError("unknown job %r" % (job_id,))
        return list_job_crashes(self.jobs_dir, job_id)

    def crash_signatures(self):
        """Cross-campaign deduped crash signatures -> sighting counts."""
        return self.dedupe.counts()

    # -- scheduling ------------------------------------------------------------

    async def run_until_idle(self):
        """Drive every admitted job to a terminal state, then return."""
        return await self._run_loop(daemon=False)

    async def serve_forever(self):
        """Daemon mode: keep serving after the backlog drains.

        The loop idles at ``poll_interval``, picking up intake requests
        (live submissions, cancels) as they arrive, until a
        ``drain-request`` is acknowledged and the backlog empties.
        Returns the final summary, like :meth:`run_until_idle`.
        """
        return await self._run_loop(daemon=True)

    async def _run_loop(self, daemon):
        """The scheduler heart: lease, intake, dispatch, reap, compact.

        Raises :class:`~repro.service.lease.LeaseLostError` the moment
        this service discovers it was fenced — every worker is killed
        first, so no write of ours lands after the successor's view
        stabilizes.
        """
        tasks = {}
        loop = asyncio.get_event_loop()
        next_pump = loop.time()
        try:
            while True:
                self._renew_lease()
                if loop.time() >= next_pump:
                    self._pump_intake()
                    next_pump = loop.time() + self.poll_interval
                self._update_breaker()
                if (
                    self.compact_after
                    and self._records_since_compact >= self.compact_after
                ):
                    self.compact()
                for record in self._dispatchable():
                    job_id = record.spec.job_id
                    self._claimed.add(job_id)
                    tasks[job_id] = asyncio.ensure_future(self._run_job(record))
                for job_id, task in list(tasks.items()):
                    if task.done():
                        del tasks[job_id]
                        await task  # surface scheduler bugs, not swallow them
                if not tasks and not any(
                    record.state in (PENDING, RUNNING)
                    for record in self.jobs.values()
                ):
                    if not daemon or self.draining:
                        return self.summary()
                await asyncio.sleep(
                    self.poll_interval if daemon and not tasks else 0.005
                )
        except LeaseLostError:
            self._fenced()
            raise
        finally:
            for task in tasks.values():
                task.cancel()

    # -- lease + fencing -------------------------------------------------------

    def _renew_lease(self):
        """Keep the lease alive; discover fencing early (self-throttled)."""
        self.lease.renew()

    def _fenced(self):
        """This service lost the root: stop writing *now*.

        Workers die first (their store writes are fence-refused anyway,
        but killing them closes the window), the lock is not touched (it
        names the successor), and the bus records why this service exits.
        """
        for job_id in list(self._procs):
            self._kill_worker(job_id)
        self._locked = False
        owner = self.lease.owner()
        self.bus.publish(
            ServiceEvent(
                "fenced",
                detail="lease lost (epoch %d); root now names %s"
                % (self.lease.epoch, owner if owner is not None else "nobody"),
                data={"fence": self.lease.epoch},
            )
        )

    # -- intake ----------------------------------------------------------------

    def _pump_intake(self):
        """The journal-tail watcher: settle requests, spot foreign writes.

        Request files are admission-re-checked and settled exactly once
        (see :mod:`repro.service.intake`).  A journal record this life
        neither wrote nor folded is a foreign write: a *higher* fence
        means we were displaced (raise, stop serving), a lower one is a
        predecessor's late write — quarantined, never applied.
        """
        requests, damaged = intake.scan_requests(self.root)
        for name, reason in damaged:
            self.journal._quarantine(
                os.path.join(self.journal.dir, name), reason, [], True
            )
        for request in requests:
            self._handle_request(request)
        for name in self._foreign_records():
            self._judge_foreign_record(name)

    def _foreign_records(self):
        try:
            names = os.listdir(self.journal.dir)
        except OSError:
            return []
        foreign = []
        for name in names:
            parsed = parse_record_name(name)
            if parsed is not None and parsed[0] not in self._seen_seqs:
                foreign.append(name)
        return sorted(foreign)

    def _judge_foreign_record(self, name):
        path = os.path.join(self.journal.dir, name)
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError:
            return
        try:
            fence = int(json.loads(body.decode("utf-8")).get("fence", 0))
        except (ValueError, AttributeError):
            fence = 0
        if fence > self.lease.epoch:
            # A successor is already journaling: we are the late writer.
            self.lease.held = False
            raise LeaseLostError(self.root, self.lease.owner())
        seq = parse_record_name(name)[0]
        self._seen_seqs.add(seq)
        self.journal._quarantine(
            path,
            "fenced late write (fence %d, current %d)" % (fence, self.lease.epoch),
            [],
            True,
        )
        self.bus.publish(
            ServiceEvent(
                "fenced",
                detail="quarantined late record %s (fence %d)" % (name, fence),
                data={"fence": fence, "record": name},
            )
        )

    def _handle_request(self, request):
        """Admission-re-check one intake request and settle it durably."""
        nonce = request["nonce"]
        path = request["path"]
        if nonce in self.handled_requests:
            intake.discard_request(path)  # settled before a crash; replay
            return
        kind = request["kind"]
        payload = request["payload"]
        refusal = None
        detail = ""
        if kind == "submit-request":
            try:
                job_id = self.submit(request=nonce, **(payload.get("spec") or {}))
                detail = "admitted %s" % job_id
            except (AdmissionError, TypeError, ValueError) as exc:
                refusal = "%s: %s" % (type(exc).__name__, exc)
        elif kind == "cancel-request":
            job_id = payload.get("job")
            try:
                if self.cancel(job_id, request=nonce):
                    detail = "cancelled %s" % job_id
                else:
                    refusal = "job %s already terminal" % job_id
            except KeyError:
                refusal = "unknown job %r" % (job_id,)
        elif kind == "drain-request":
            self.draining = True
            self.handled_requests[nonce] = None
            self._journal(None, "ack", {"request": nonce, "reason": "draining"})
            detail = "draining"
        else:
            refusal = "unknown request kind %r" % (kind,)
        if refusal is not None:
            self.handled_requests[nonce] = None
            self._journal(None, "refuse", {"request": nonce, "reason": refusal})
            self.bus.publish(
                ServiceEvent(
                    "refuse",
                    detail="%s %s: %s" % (kind, nonce, refusal),
                    data={"request": nonce, "kind": kind},
                )
            )
        else:
            self.bus.publish(
                ServiceEvent(
                    "intake",
                    detail="%s %s: %s" % (kind, nonce, detail or "ok"),
                    data={"request": nonce, "kind": kind},
                )
            )
        intake.discard_request(path)

    # -- compaction ------------------------------------------------------------

    def compact(self):
        """Fold settled history into a snapshot record (crash-safe).

        Delegates to :meth:`JobJournal.compact`; the journal keeps the two
        newest snapshots and deletes only records the *previous* snapshot
        already covers, so a kill at any instant leaves a recoverable
        root.  Returns the snapshot path (None for an empty journal).
        """
        path = self.journal.compact()
        self._records_since_compact = 0
        self._seen_seqs = self._disk_seqs()
        if path is not None:
            self.bus.publish(
                ServiceEvent(
                    "compact",
                    detail=os.path.basename(path),
                    data={"snapshot": os.path.basename(path)},
                )
            )
        return path

    def summary(self):
        states = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        data = {"jobs": len(self.jobs), "states": states}
        data.update({"dedupe": self.dedupe.summary()})
        return data

    def _dispatchable(self):
        """Pending jobs eligible to start now, highest priority first."""
        slots = self.max_workers - len(self._claimed)
        if slots <= 0:
            return []
        running_by_tenant = {}
        for job_id in self._claimed:
            tenant = self.jobs[job_id].spec.tenant
            running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
        eligible = sorted(
            (
                record
                for record in self.jobs.values()
                if record.state == PENDING
                and record.spec.job_id not in self._claimed
            ),
            key=lambda record: (-record.spec.priority, record.spec.index),
        )
        picked = []
        for record in eligible:
            if slots <= 0:
                break
            tenant = record.spec.tenant
            if running_by_tenant.get(tenant, 0) >= self._policy(tenant).max_running:
                continue
            running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
            slots -= 1
            picked.append(record)
        return picked

    async def _run_job(self, record):
        """One job's attempt loop: spawn, drive, retry-or-degrade."""
        spec = record.spec
        try:
            while True:
                incarnation = record.attempts
                proc, conn = self._spawn(spec, incarnation)
                self._journal(
                    spec.job_id,
                    "start",
                    {"attempt": incarnation, "pid": proc.pid, "host": lock_host()},
                )
                self.bus.publish(
                    ServiceEvent(
                        "start",
                        job=spec.job_id,
                        tenant=spec.tenant,
                        detail="attempt %d pid %d" % (incarnation, proc.pid),
                    )
                )
                try:
                    summary = await self._drive(record, conn)
                except (WorkerError, CheckpointError) as exc:
                    self._kill_worker(spec.job_id)
                    if record.terminal():
                        return  # cancelled under our feet; already journaled
                    if not await self._charge_retry(record, exc):
                        return
                    continue
                self._kill_worker(spec.job_id)
                self._journal(spec.job_id, "done", {"summary": summary})
                self.dedupe.rescan_job(self.jobs_dir, spec.job_id)
                self.bus.publish(
                    ServiceEvent(
                        "done",
                        job=spec.job_id,
                        tenant=spec.tenant,
                        detail="%d execs, %d crash sig(s)"
                        % (summary.get("execs", 0), len(summary.get("crash_sigs", ()))),
                        data={"execs": summary.get("execs", 0)},
                    )
                )
                return
        finally:
            self._claimed.discard(spec.job_id)

    async def _charge_retry(self, record, exc):
        """Charge a failed attempt; True to retry, False once degraded."""
        spec = record.spec
        category = failure_category(exc)
        detail = "%s: %s" % (type(exc).__name__, exc)
        if category in _NO_RETRY_CATEGORIES:
            self._degrade(record, category, detail)
            return False
        tenant_used = self._tenant_retries.get(spec.tenant, 0)
        tenant_budget = self._policy(spec.tenant).retry_budget
        if record.retries_used >= spec.max_retries:
            self._degrade(
                record,
                "retry-budget",
                "retry budget (%d) exhausted; last failure %s — %s"
                % (spec.max_retries, category, detail),
            )
            return False
        if tenant_used >= tenant_budget:
            self._degrade(
                record,
                "retry-budget",
                "tenant %r retry budget (%d) exhausted; last failure %s — %s"
                % (spec.tenant, tenant_budget, category, detail),
            )
            return False
        retries = record.retries_used + 1
        self._tenant_retries[spec.tenant] = tenant_used + 1
        self._journal(
            spec.job_id,
            "retry",
            {"retries_used": retries, "reason": detail, "category": category},
        )
        delay = self.restart_policy.delay(retries)
        self.bus.publish(
            ServiceEvent(
                "retry",
                job=spec.job_id,
                tenant=spec.tenant,
                detail="#%d after %.2gs: %s" % (retries, delay, detail),
                data={"retries_used": retries, "category": category},
            )
        )
        if delay > 0:
            await asyncio.sleep(delay)
        return True

    def _degrade(self, record, category, detail):
        spec = record.spec
        self._journal(
            spec.job_id, "degrade", {"category": category, "detail": detail}
        )
        self.bus.publish(
            ServiceEvent(
                "degrade",
                job=spec.job_id,
                tenant=spec.tenant,
                detail="%s: %s" % (category, detail),
                data={"category": category},
            )
        )
        # Mirror the richer campaign-level degraded event: same cause/detail
        # fields, so one dashboard consumes both.
        self.bus.publish(
            WorkerDroppedEvent(
                spec.job_id, spec.index, detail, cause=category, detail=category
            )
        )

    async def _drive(self, record, conn):
        """Await heartbeats until the final result, deadline-guarded."""
        spec = record.spec
        loop = asyncio.get_event_loop()
        wall_end = loop.time() + spec.wall_budget
        while True:
            message = await self._recv(conn, spec, wall_end)
            if message[0] == "heartbeat":
                record.progress = message[1]
                continue
            if message[0] == "done":
                return message[1]
            if message[0] == "error":
                category, detail = message[1], message[2]
                if category == "checkpoint-corrupt":
                    raise CheckpointCorruptError(
                        "job %s refused its checkpoint: %s" % (spec.job_id, detail)
                    )
                if category == "fenced":
                    # The worker's store lease was stolen (paused host,
                    # expired slice lease).  Retryable: a respawn takes a
                    # fresh slice epoch; the stale attempt's writes were
                    # refused at the store boundary.
                    raise WorkerDeadError(spec.index, "fenced mid-job: %s" % detail)
                raise WorkerTaskError(spec.index, "failed: %s" % (detail,))
            raise WorkerTaskError(
                spec.index, "sent unexpected message %r" % (message[0],)
            )

    async def _recv(self, conn, spec, wall_end):
        """One reply with ``recv_with_deadline`` semantics, non-blocking.

        Polls the pipe cooperatively (the event loop keeps scheduling other
        jobs) and raises the typed timeout errors: heartbeat silence is a
        :class:`HeartbeatTimeoutError`, the attempt's wall budget a
        :class:`WallBudgetError`, EOF a dead worker.
        """
        loop = asyncio.get_event_loop()
        heartbeat_end = loop.time() + spec.heartbeat_timeout
        while True:
            try:
                if conn.poll(0):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDeadError(spec.index, "died mid-job (%s)" % (exc,))
            now = loop.time()
            if now >= wall_end:
                raise WallBudgetError(
                    spec.index,
                    "exceeded its %.1fs wall budget" % spec.wall_budget,
                )
            if now >= heartbeat_end:
                raise HeartbeatTimeoutError(
                    spec.index,
                    "sent no heartbeat within %.1fs" % spec.heartbeat_timeout,
                )
            await asyncio.sleep(0.01)

    # -- workers ---------------------------------------------------------------

    def _job_dir(self, job_id):
        return os.path.join(self.jobs_dir, job_id)

    def _spawn(self, spec, incarnation):
        job_dir = self._job_dir(spec.job_id)
        os.makedirs(job_dir, exist_ok=True)
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=job_worker_main,
            args=(child_conn, spec.to_dict(), job_dir, incarnation, self.lease_ttl),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[spec.job_id] = (proc, parent_conn)
        return proc, parent_conn

    def _kill_worker(self, job_id):
        entry = self._procs.pop(job_id, None)
        if entry is None:
            return
        proc, conn = entry
        try:
            conn.close()
        except Exception:
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join(5)
        if proc.is_alive():
            proc.kill()
            proc.join(5)

    # -- load shedding ---------------------------------------------------------

    def _policy(self, tenant):
        return self.policies.get(tenant, self.default_policy)

    def _backlog(self):
        return sum(1 for record in self.jobs.values() if record.state == PENDING)

    def _update_breaker(self):
        """Backlog hysteresis: open at ``shed_high``, close at ``shed_low``."""
        backlog = self._backlog()
        if not self.breaker_open and backlog >= self.shed_high:
            self.breaker_open = True
            self.bus.publish(
                ServiceEvent(
                    "breaker",
                    detail="open: backlog %d >= %d" % (backlog, self.shed_high),
                    data={"state": "open", "backlog": backlog},
                )
            )
        elif self.breaker_open and backlog <= self.shed_low:
            self.breaker_open = False
            self.bus.publish(
                ServiceEvent(
                    "breaker",
                    detail="closed: backlog %d <= %d" % (backlog, self.shed_low),
                    data={"state": "closed", "backlog": backlog},
                )
            )
