"""Cross-campaign crash dedupe keyed on triage stack signatures.

Crash identity inside one campaign is the triage stack hash (``hash5``),
embedded in every crash artifact's file name (``id:N,sig:<hash5>,hash:…``).
The service-level dedupe folds those signatures across *all* jobs: a crash
signature seen by five campaigns is one bug with five witnesses, and the
per-signature job sets tell operators which workloads reach it.

The index is **derived state**: every count is the number of crash
artifacts on disk carrying that signature, reconstructed by scanning
artifact file names alone.  :meth:`CrashDedupe.rebuild` scans everything
(service restart); :meth:`CrashDedupe.rescan_job` reconciles one job
(after it completes).  Because both derive from the same disk state, the
counts are stable across a kill-and-restart by construction — the CI
resilience job asserts exactly that.
"""

import os

from repro.fuzzer.store import CRASH_DIR, parse_artifact_name


def _job_crash_sigs(jobs_root, job_id):
    """Signatures of every crash artifact under one job's store slices."""
    sigs = []
    store_root = os.path.join(jobs_root, job_id, "store")
    try:
        workers = sorted(os.listdir(store_root))
    except OSError:
        return sigs
    for worker in workers:
        crash_dir = os.path.join(store_root, worker, CRASH_DIR)
        try:
            names = sorted(os.listdir(crash_dir))
        except OSError:
            continue
        for name in names:
            if name.endswith(".report.txt") or name.endswith(".triage.json"):
                continue
            parsed = parse_artifact_name(name)
            if parsed is not None and parsed[1] is not None:
                sigs.append(parsed[1])
    return sigs


class CrashDedupe:
    """Signature -> per-job artifact counts across every job's crash store."""

    def __init__(self):
        self._sigs = {}  # sig -> {job_id: artifact count}

    def add(self, sig, job):
        """Record one crash artifact of ``job``; True if the sig is new."""
        entry = self._sigs.get(sig)
        if entry is None:
            self._sigs[sig] = {job: 1}
            return True
        entry[job] = entry.get(job, 0) + 1
        return False

    def unique_signatures(self):
        return sorted(self._sigs)

    def counts(self):
        """{signature: total artifacts} (deterministic iteration order)."""
        return {
            sig: sum(self._sigs[sig].values()) for sig in sorted(self._sigs)
        }

    def jobs_for(self, sig):
        entry = self._sigs.get(sig)
        return sorted(entry) if entry else []

    def summary(self):
        return {
            "unique": len(self._sigs),
            "total": sum(sum(entry.values()) for entry in self._sigs.values()),
        }

    def rescan_job(self, jobs_root, job_id):
        """Reconcile one job's contribution with what is actually on disk.

        Drops the job's previous counts, then re-derives them from its
        crash directories — idempotent, so recounting a requeued job whose
        artifacts were already indexed at recovery time cannot inflate
        totals.
        """
        for sig in list(self._sigs):
            entry = self._sigs[sig]
            entry.pop(job_id, None)
            if not entry:
                del self._sigs[sig]
        for sig in _job_crash_sigs(jobs_root, job_id):
            self.add(sig, job_id)
        return self

    def rebuild(self, jobs_root):
        """Reconstruct the whole index by scanning every job's crash dirs.

        Deterministic (sorted walk) and read-only, so two scans of the
        same disk state — e.g. before a kill and after the restart —
        agree exactly.
        """
        self._sigs = {}
        try:
            job_ids = sorted(os.listdir(jobs_root))
        except OSError:
            return self
        for job_id in job_ids:
            for sig in _job_crash_sigs(jobs_root, job_id):
                self.add(sig, job_id)
        return self
