"""Greybox fuzzing engine: queue, mutators, scheduling, virtual clock."""

from repro.fuzzer.campaign import CampaignResult, replay_edge_coverage
from repro.fuzzer.clock import TICKS_PER_HOUR, VirtualClock, hours_to_ticks
from repro.fuzzer.cmin import coverage_of, minimize_corpus
from repro.fuzzer.corpus import Queue, QueueEntry
from repro.fuzzer.engine import (
    CrashRecord,
    EngineConfig,
    FuzzEngine,
    afl_engine_config,
)
from repro.fuzzer.parallel import (
    CellFailure,
    ParallelMatrixError,
    run_cells,
    run_instance_campaign,
    run_matrix_parallel,
)
from repro.fuzzer.stats import CampaignStats, MatrixProgress

__all__ = [
    "FuzzEngine",
    "EngineConfig",
    "afl_engine_config",
    "CrashRecord",
    "Queue",
    "QueueEntry",
    "VirtualClock",
    "hours_to_ticks",
    "TICKS_PER_HOUR",
    "CampaignResult",
    "replay_edge_coverage",
    "minimize_corpus",
    "coverage_of",
    "CellFailure",
    "ParallelMatrixError",
    "run_cells",
    "run_instance_campaign",
    "run_matrix_parallel",
    "CampaignStats",
    "MatrixProgress",
]
