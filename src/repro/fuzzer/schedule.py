"""Power scheduling: how much mutation energy a queue entry receives.

A condensed version of AFL's ``calculate_score``: energy scales with how
cheap the entry is to execute, how much coverage it exercises, how deep in
the mutation chain it sits, and how late it joined (handicap).  The result
multiplies the havoc iteration count.

Scheduling is stateless by design: every input that influences a score
lives on the :class:`~repro.fuzzer.corpus.QueueEntry` itself (including
the *decaying* ``handicap`` counter, which this module mutates in place).
That is what lets checkpoints capture scheduling exactly — snapshotting
the queue snapshots the schedule, and a resumed engine hands out the same
energy the uninterrupted one would have (see
:mod:`repro.fuzzer.checkpoint`).
"""


def performance_score(entry, avg_exec_cost, avg_trace_size):
    """AFL-style perf score (100 = neutral), clamped to [10, 1600]."""
    score = 100.0
    if avg_exec_cost > 0:
        ratio = entry.exec_cost / avg_exec_cost
        if ratio < 0.25:
            score *= 3.0
        elif ratio < 0.5:
            score *= 2.0
        elif ratio < 0.75:
            score *= 1.5
        elif ratio > 4.0:
            score *= 0.25
        elif ratio > 2.0:
            score *= 0.5
    if avg_trace_size > 0:
        ratio = len(entry.trace) / avg_trace_size
        if ratio > 1.5:
            score *= 1.4
        elif ratio < 0.5:
            score *= 0.7
    if entry.handicap >= 4:
        score *= 3.0
        entry.handicap -= 4
    elif entry.handicap:
        score *= 2.0
        entry.handicap -= 1
    depth = entry.depth
    if 4 <= depth <= 7:
        score *= 2.0
    elif 8 <= depth <= 13:
        score *= 3.0
    elif 14 <= depth <= 25:
        score *= 4.0
    elif depth > 25:
        score *= 5.0
    # Entries synced in from another instance embody coverage this instance
    # never reached on its own: give them extra energy on their first visit.
    # Single-instance campaigns never import, so the sequential paths are
    # bit-for-bit unaffected.
    if getattr(entry, "imported", False) and not entry.was_fuzzed:
        score *= 1.5
    # Entries minted by the taint-guided masked stage sit on a rare-branch
    # frontier by construction: focused energy on the first visit mirrors
    # the imported-entry boost.  Campaigns without taint never set the
    # attribute, so their schedules are bit-for-bit unchanged.
    if getattr(entry, "taint_focus", None) is not None and not entry.was_fuzzed:
        score *= 1.5
    return max(10.0, min(score, 1600.0))


def havoc_iterations(score, multiplier=0.32):
    """Havoc stage length for a perf score.

    ``multiplier`` compresses AFL's 256-iteration baseline to the virtual-
    clock scale: a neutral entry gets ~32 havoc executions per visit.
    """
    return max(8, int(score * multiplier))
