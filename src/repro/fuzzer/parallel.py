"""Parallel campaign execution.

Two multiprocess modes, mirroring how the paper's evaluation was deployed
on a many-core server:

**Matrix parallelism** (:func:`run_cells`, :func:`run_matrix_parallel`)
    fans independent (subject, config, run-seed) campaign cells out over a
    pool of worker *processes*.  Each cell runs in a process of its own, so
    a worker that raises, hangs past its deadline, or dies outright marks
    only its cell failed — the rest of the matrix completes.  Per-cell RNGs
    are derived from the cell key (see ``campaign_rng``), so a parallel run
    is byte-identical to the sequential one, and workers share the runner's
    on-disk result cache.

**Instance parallelism** (:func:`run_instance_campaign`)
    an AFL++-style main/secondary campaign: N engine workers fuzz the *same*
    subject under the same config (distinct per-instance RNG streams) and
    periodically exchange interesting inputs through a parent-mediated
    corpus sync.  The merge policy is AFL's: candidates are deduplicated by
    input hash, admitted only if they add (index, bucket) novelty to the
    shared virgin map under the campaign's own feedback, and broadcast to
    every other worker, which re-executes them locally before queueing
    (``import_input``).  Sync rounds are barriers driven in worker order,
    so the whole campaign is deterministic for a fixed worker count.

Both modes report progress through :mod:`repro.fuzzer.stats`, and both are
*supervised* (see :mod:`repro.fuzzer.supervisor`): matrix cells that crash
or time out can be retried with exponential backoff, and instance workers
that die or stall are restarted from their last checkpoint (or replayed
deterministically from round zero) with a restart budget — a worker that
exhausts it is dropped and the campaign continues degraded instead of
failing.  The :mod:`repro.fuzzer.faultinject` harness drives every one of
those recovery paths under test.
"""

import hashlib
import logging
import multiprocessing
import os
import time
from collections import deque
from multiprocessing import connection

from repro.coverage.bitmap import VirginMap
from repro.fuzzer.stats import CampaignStats, MatrixProgress
from repro.fuzzer.supervisor import (
    DEFAULT_WORKER_TIMEOUT,
    RestartPolicy,
    SupervisedWorker,
    Supervisor,
    WorkerDeadError,
    WorkerLostError,
    recv_with_deadline,
)

logger = logging.getLogger("repro.fuzzer.parallel")


def _mp_context():
    """Prefer fork (cheap, inherits built subjects); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- matrix parallelism --------------------------------------------------------


class CellFailure:
    """Why one matrix cell produced no result."""

    __slots__ = ("key", "kind", "message", "restarts")

    def __init__(self, key, kind, message, restarts=0):
        self.key = key
        self.kind = kind  # "error" | "crashed" | "timeout"
        self.message = message
        self.restarts = restarts  # supervised retries consumed before giving up

    def __repr__(self):
        return "CellFailure(%s: %s, %s)" % (self.key, self.kind, self.message)


class ParallelMatrixError(RuntimeError):
    """Raised after a parallel matrix finishes with failed cells.

    The run is never aborted early: every other cell completes first, and
    ``partial_results`` carries everything that did succeed.
    """

    def __init__(self, failures, partial_results):
        self.failures = list(failures)
        self.partial_results = partial_results
        lines = ["%d matrix cell(s) failed:" % len(self.failures)]
        for failure in self.failures:
            lines.append(
                "  %s: [%s] %s" % (failure.key, failure.kind, failure.message)
            )
        super().__init__("\n".join(lines))


def run_campaign_cell(task):
    """Default cell body: one cached campaign (runs inside the worker)."""
    from repro.experiments.runner import campaign

    return campaign(*task)


def _cell_entry(conn, cell_fn, task):
    """Worker process entry: run the cell, ship the outcome, exit."""
    try:
        from repro import telemetry

        # Re-home tracing: a forked child must not append to the parent's
        # JSONL stream (its writes are PID-guarded no-ops anyway).
        telemetry.child_trace("cell%d" % os.getpid())
        result = cell_fn(task)
        conn.send(("ok", result))
    except BaseException as exc:  # report *any* failure, then die quietly
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def run_cells(
    tasks,
    jobs,
    timeout=None,
    cell_fn=None,
    progress=None,
    max_restarts=None,
    restart_policy=None,
):
    """Run independent campaign cells over ``jobs`` worker processes.

    ``tasks`` maps cell key -> argument tuple for ``cell_fn`` (default:
    :func:`run_campaign_cell`).  Returns ``(results, failures)`` where
    ``results`` maps key -> cell result and ``failures`` lists a
    :class:`CellFailure` per cell that raised ("error"), died without
    reporting ("crashed"), or exceeded ``timeout`` wall seconds
    ("timeout").  A failing cell never aborts the others.

    Transient failures ("crashed", "timeout") are retried with exponential
    backoff up to ``max_restarts`` times per cell (default: the
    ``REPRO_CELL_RESTARTS`` environment knob, 0).  Deterministic failures
    ("error": the cell raised) are never retried — rerunning them only
    reproduces the exception more slowly.  With checkpointing enabled
    (``REPRO_CHECKPOINT_DIR``), a retried campaign cell resumes from its
    last checkpoint instead of recomputing from zero.
    """
    cell_fn = run_campaign_cell if cell_fn is None else cell_fn
    jobs = max(1, int(jobs))
    if max_restarts is None:
        max_restarts = int(os.environ.get("REPRO_CELL_RESTARTS", "0") or 0)
    policy = restart_policy or RestartPolicy(max_restarts=max_restarts)
    if progress is None:
        progress = MatrixProgress(total=len(tasks))
    ctx = _mp_context()
    # Work items are (key, task, attempt, not_before): ``not_before`` holds
    # a retried cell out of the pool until its backoff expires.
    pending = deque((key, task, 0, 0.0) for key, task in tasks.items())
    running = {}  # recv conn -> (key, task, process, started, deadline, attempt)
    results = {}
    failures = []

    def finish(conn, status, wall, execs=0):
        key, _, _, _, _, attempt = running.pop(conn)
        conn.close()
        progress.record_cell(key, status, wall, execs, restarts=attempt)

    def retire(conn, kind, message, wall):
        """Fail one attempt: reschedule if transient and budget remains."""
        key, task, _, _, _, attempt = running[conn]
        if kind != "error" and attempt < policy.max_restarts:
            delay = policy.delay(attempt + 1)
            progress.record_retry(key, attempt + 1, kind, delay)
            running.pop(conn)
            conn.close()
            pending.append((key, task, attempt + 1, time.monotonic() + delay))
            return
        failures.append(CellFailure(key, kind, message, restarts=attempt))
        finish(conn, kind, wall)

    while pending or running:
        now = time.monotonic()
        deferred = []
        while pending and len(running) < jobs:
            key, task, attempt, not_before = pending.popleft()
            if not_before > now:
                deferred.append((key, task, attempt, not_before))
                continue
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_cell_entry, args=(send_conn, cell_fn, task), daemon=True
            )
            proc.start()
            send_conn.close()
            started = time.monotonic()
            deadline = started + timeout if timeout else None
            running[recv_conn] = (key, task, proc, started, deadline, attempt)
        for item in reversed(deferred):
            pending.appendleft(item)
        wait_until = [d for (_, _, _, _, d, _) in running.values() if d is not None]
        if deferred and len(running) < jobs:
            wait_until.append(min(item[3] for item in deferred))
        wait_for = None
        if wait_until:
            wait_for = max(0.0, min(wait_until) - time.monotonic())
        if not running:
            # Only backed-off retries remain; sleep until the earliest one.
            if wait_for:
                time.sleep(wait_for)
            continue
        ready = connection.wait(list(running), timeout=wait_for)
        now = time.monotonic()
        if not ready:
            for conn, (key, task, proc, started, deadline, attempt) in list(
                running.items()
            ):
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    proc.join()
                    retire(
                        conn,
                        "timeout",
                        "exceeded %.1fs wall budget" % timeout,
                        now - started,
                    )
            continue
        for conn in ready:
            key, task, proc, started, _, attempt = running[conn]
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                proc.join()
                message = "worker died without reporting (exit code %s)" % (
                    proc.exitcode,
                )
                retire(conn, "crashed", message, now - started)
                continue
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join()
            if status == "ok":
                results[key] = payload
                finish(conn, "ok", now - started, getattr(payload, "execs", 0))
            else:
                retire(conn, "error", payload, now - started)
    return results, failures


def run_matrix_parallel(cells, jobs, timeout=None, progress=None):
    """Run a campaign-cell matrix; raise if any cell failed.

    ``cells`` maps (subject, config, run_seed) -> campaign argument tuple.
    On any failure, raises :class:`ParallelMatrixError` *after* every other
    cell has completed (partial results attached).
    """
    results, failures = run_cells(cells, jobs, timeout=timeout, progress=progress)
    if failures:
        raise ParallelMatrixError(failures, results)
    return results


# -- instance parallelism ------------------------------------------------------


def input_hash(data):
    """Content identity used for cross-instance corpus dedup."""
    return hashlib.sha1(bytes(data)).hexdigest()


def instance_rng_seed(subject_name, config_name, run_seed, worker_index):
    """Deterministic RNG seed unique to one engine instance."""
    digest = hashlib.sha256(
        (
            "%s|%s|%d|worker%d" % (subject_name, config_name, run_seed, worker_index)
        ).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")


def _build_instance_engine(subject_name, config_name, run_seed, worker_index):
    import random

    from repro.experiments.config import FUZZER_CONFIGS
    from repro.fuzzer.engine import FuzzEngine
    from repro.subjects import get_subject

    spec = FUZZER_CONFIGS[config_name]
    if spec.kind != "plain":
        raise ValueError(
            "instance parallelism supports plain configs only, not %r (%s)"
            % (config_name, spec.kind)
        )
    subject = get_subject(subject_name)
    rng = random.Random(
        instance_rng_seed(subject_name, config_name, run_seed, worker_index)
    )
    engine = FuzzEngine(
        subject.program,
        spec.feedback_factory(),
        subject.seeds,
        rng,
        spec.engine_config(subject),
        subject.tokens,
    )
    return subject, engine


def _instance_worker(
    conn,
    subject_name,
    config_name,
    run_seed,
    worker_index,
    budget,
    resume_path=None,
    incarnation=0,
    output_dir=None,
    resume_store=False,
):
    """Engine worker: obey run/import/sync_dir/checkpoint/finish commands.

    On spawn the worker reports ``("ready", resumed_round, note)``:
    ``resumed_round`` is how many sync rounds its restored state already
    embodies (0 for a fresh engine), so the parent knows which history
    suffix to replay.  A stale/corrupt checkpoint is *refused* (typed
    validation in :mod:`repro.fuzzer.checkpoint`), reported in ``note``;
    the worker then falls back to its durable store slice when one holds
    artifacts (``output_dir`` campaigns), and to a fresh engine otherwise —
    the supervisor's deterministic replay rebuilds the lost rounds.

    With ``output_dir`` the worker owns the ``<output_dir>/w<index>/``
    workspace slice (:class:`repro.fuzzer.store.CampaignStore`): every new
    queue entry, crash, and hang streams to disk as found, and corpus sync
    is AFL's foreign-queue scan over the sibling slices (``sync_dir``)
    instead of a parent-mediated pipe merge.

    Fault-injection hooks (:mod:`repro.fuzzer.faultinject`) fire at the
    protocol sites real campaigns die at: just before the sync reply
    (kill / stall / drop), just after a checkpoint write (truncate), and
    inside store artifact commits (torn-write / corrupt-file).
    """
    from repro.fuzzer import faultinject
    from repro.fuzzer.checkpoint import CheckpointError

    store = None
    try:
        from repro import telemetry

        telemetry.child_trace("w%d" % worker_index)
        subject, engine = _build_instance_engine(
            subject_name, config_name, run_seed, worker_index
        )
        engine.telemetry = telemetry.engine_telemetry(
            label="w%d" % worker_index, budget_ticks=budget
        )
        if output_dir is not None:
            from repro.fuzzer.store import CampaignStore, worker_name

            store = CampaignStore(
                output_dir,
                worker=worker_name(worker_index),
                meta={
                    "subject": subject_name,
                    "config": config_name,
                    "run_seed": run_seed,
                },
                worker_index=worker_index,
                incarnation=incarnation,
            )
            engine.store = store
        # Foreign-queue dedup: every content hash this worker has already
        # considered (its own corpus streams through the store, so the
        # store's hash index covers those).
        seen = {input_hash(seed) for seed in subject.seeds}
        round_no = 0  # sync rounds completed (and embodied in engine state)
        reported = 0  # first entry id not yet shipped to the parent
        note = ""
        if resume_path is not None:
            try:
                meta = engine.resume(resume_path)
                round_no = int(meta.get("round", 0))
                reported = engine.queue.next_entry_id()
                if store is not None:
                    # Backfill artifacts the snapshot holds but a torn
                    # store might not (content-deduped, so normally no-op).
                    from repro.fuzzer.store import attach_store

                    attach_store(engine, store)
            except (CheckpointError, OSError) as exc:
                note = "%s: %s" % (type(exc).__name__, exc)
                resume_path = None
        if resume_path is None:
            engine.start(budget)
            if (
                store is not None
                and (resume_store or incarnation > 0)
                and store.has_artifacts()
            ):
                # No (valid) checkpoint: the workspace on disk is the newest
                # surviving truth.  The tolerant scan quarantines damage and
                # the survivors replay through import_input — lossless for
                # everything durably written, though not tick-identical.
                store.replay_into(engine)
                round_no = store.rounds()
                reported = engine.queue.next_entry_id()
                if note:
                    note += "; recovered from store (%d rounds)" % round_no
        conn.send(("ready", round_no, note))
        plan = faultinject.active_plan()
        while True:
            command = conn.recv()
            if command[0] == "run":
                engine.run_until(command[1])
                round_no += 1
                if store is None:
                    fresh = [
                        (entry.data, entry.classified)
                        for entry in engine.queue.entries_since(reported)
                        if not entry.imported
                    ]
                else:
                    # Directory sync: fresh entries are already on disk;
                    # nothing crosses the pipe but the progress sample.
                    fresh = []
                reported = engine.queue.next_entry_id()
                fault = plan.match("sync", worker_index, round_no, incarnation)
                if fault is not None and faultinject.fire_sync_fault(fault):
                    continue  # injected pipe-message drop: no reply at all
                conn.send(
                    (
                        "synced",
                        fresh,
                        {
                            "ticks": engine.clock.ticks,
                            "execs": engine.execs,
                            "queue": len(engine.queue.entries),
                            "crashes": engine.crash_count,
                            "hangs": engine.hangs,
                            "coverage": engine.virgin.coverage_count(),
                        },
                    )
                )
            elif command[0] == "import":
                added = 0
                for data in command[1]:
                    if engine.import_input(data) is not None:
                        added += 1
                reported = engine.queue.next_entry_id()
                conn.send(("imported", added))
            elif command[0] == "sync_dir":
                sync_round = int(command[1])
                added = 0
                scanned = 0
                skip = seen | store.queue_hashes()
                for digest, data in store.foreign_entries(skip):
                    scanned += 1
                    seen.add(digest)
                    if engine.import_input(data) is not None:
                        added += 1
                reported = engine.queue.next_entry_id()
                store.record_round(sync_round)
                conn.send(("imported", added, scanned))
            elif command[0] == "checkpoint":
                path, ckpt_round = command[1], command[2]
                engine.save_checkpoint(
                    path, meta={"round": ckpt_round, "worker": worker_index}
                )
                fault = plan.match("checkpoint", worker_index, ckpt_round, incarnation)
                if fault is not None:
                    faultinject.fire_checkpoint_fault(fault, path)
                conn.send(("checkpointed", ckpt_round))
            elif command[0] == "finish":
                from repro.fuzzer.campaign import result_from_engines

                engine.finish()
                if store is not None:
                    store.finalize(engine, extra={"rounds": round_no})
                result = result_from_engines(
                    subject, config_name, run_seed, [engine], engine
                )
                conn.send(("result", result))
                return
            else:
                raise ValueError("unknown command %r" % (command[0],))
    except BaseException as exc:
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        if store is not None:
            try:
                store.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


def _recv_or_raise(conn, worker_index, expected, timeout=DEFAULT_WORKER_TIMEOUT):
    """Deadline-guarded worker reply (typed errors; never blocks forever).

    Kept under its legacy name; the implementation is
    :func:`repro.fuzzer.supervisor.recv_with_deadline`, which raises
    :class:`~repro.fuzzer.supervisor.WorkerStallError` once ``timeout``
    wall seconds pass without a reply instead of hanging on a half-dead
    worker pipe.
    """
    return recv_with_deadline(conn, timeout, worker_index, expected)


def merge_instance_results(
    subject_name,
    config_name,
    run_seed,
    results,
    queue_size,
    degraded=False,
    degraded_reasons=(),
    worker_restarts=(),
):
    """Fold per-worker CampaignResults into one merged campaign record.

    Crash buckets merge by stack hash (counts accumulate, earliest
    ``found_at`` wins); coverage and bug sets union; execution counts sum.
    ``ticks`` is the per-instance budget actually consumed (the wall-clock
    analogue: instances run concurrently), so the merged throughput is the
    *aggregate* execs per virtual hour across all instances.
    """
    from repro.fuzzer.campaign import CampaignResult, CrashInfo, HangInfo
    from repro.fuzzer.clock import TICKS_PER_HOUR

    merged = {}
    merged_hangs = {}
    crash_count = 0
    afl_unique = 0
    execs = 0
    hangs = 0
    timeline = []
    edges = set()
    bugs = set()
    for result in results:
        crash_count += result.crash_count
        afl_unique += result.afl_unique_crash_count
        execs += result.execs
        hangs += result.hangs
        edges.update(result.edges)
        bugs.update(result.bugs)
        timeline.extend(result.timeline)
        for hang in result.hang_records:
            existing = merged_hangs.get(hang.input_hash)
            if existing is None:
                merged_hangs[hang.input_hash] = HangInfo(
                    input_hash=hang.input_hash,
                    data=hang.data,
                    count=hang.count,
                    found_at=hang.found_at,
                )
            else:
                existing.count += hang.count
                existing.found_at = min(existing.found_at, hang.found_at)
        for record in result.crash_records:
            existing = merged.get(record.hash5)
            if existing is None:
                merged[record.hash5] = CrashInfo(
                    bug=record.bug,
                    hash5=record.hash5,
                    kind=record.kind,
                    count=record.count,
                    afl_unique=record.afl_unique,
                    found_at=record.found_at,
                    stack=record.stack,
                )
            else:
                existing.count += record.count
                existing.found_at = min(existing.found_at, record.found_at)
    ticks = max((result.ticks for result in results), default=0)
    throughput = execs / (ticks / TICKS_PER_HOUR) if ticks else 0.0
    from repro.telemetry.plateau import default_window, detect_plateaus

    # Plateaus over the merged timeline: detect_plateaus rectifies the
    # interleaved per-worker coverage counts with a running max, so a gain
    # on *any* instance ends a plateau.  The stall window scales with the
    # campaign budget (ticks), not the observed timeline span.
    plateaus = detect_plateaus(
        [(t[0], t[2]) for t in sorted(timeline)], window=default_window(ticks)
    )
    return CampaignResult(
        subject_name=subject_name,
        config_name=config_name,
        run_seed=run_seed,
        bugs=bugs,
        crash_records=list(merged.values()),
        crash_count=crash_count,
        afl_unique_crash_count=afl_unique,
        queue_size=queue_size,
        edges=frozenset(edges),
        execs=execs,
        hangs=hangs,
        hang_records=tuple(merged_hangs.values()),
        ticks=ticks,
        throughput=throughput,
        timeline=sorted(timeline),
        degraded=degraded,
        degraded_reasons=tuple(degraded_reasons),
        worker_restarts=tuple(worker_restarts),
        plateaus=plateaus,
    )


#: History marker: this round synced through the shared directory, not the pipe.
_DIR_SYNC = "dir"


def run_instance_campaign(
    subject_name,
    config_name,
    run_seed,
    budget_ticks,
    workers=2,
    sync_interval_ticks=None,
    stats=None,
    supervise=True,
    restart_policy=None,
    worker_timeout=None,
    checkpoint_dir=None,
    output_dir=None,
    resume_store=False,
):
    """AFL++-style main/secondary campaign over ``workers`` engine processes.

    Every instance fuzzes the full ``budget_ticks`` (as real instances each
    run the full wall-clock), pausing at sync barriers every
    ``sync_interval_ticks`` (default: budget / 8, the paper's round scale).
    Returns ``(merged_result, worker_results, stats)``.

    The campaign is *supervised*: a worker that dies or stalls (no reply
    within ``worker_timeout`` wall seconds) is restarted with exponential
    backoff under ``restart_policy``, resumed from its last on-disk
    checkpoint (one per worker under ``checkpoint_dir``, written at every
    sync barrier) or — when no valid checkpoint exists — rebuilt by
    deterministically replaying the completed rounds.  Either way the
    recovered campaign is byte-identical to an undisturbed one.  A worker
    that exhausts its restart budget is dropped: the campaign continues
    with the survivors and the merged result records ``degraded=True``
    plus per-worker restart counts.  ``supervise=False`` restores the old
    fail-fast behavior (any worker failure raises).

    ``output_dir`` switches the campaign to the *durable workspace* mode:
    every worker owns an AFL-style ``<output_dir>/w<i>/`` store slice
    (:mod:`repro.fuzzer.store`) that streams queue entries, crashes, and
    hangs to disk as found, and sync rounds become AFL's foreign-queue
    directory scan (dedupe by content hash) instead of in-memory pipe
    merges.  A restarted worker with no valid checkpoint recovers from its
    store slice; ``resume_store=True`` makes the *first* spawn recover the
    same way, which is how ``--resume-dir`` continues a killed campaign.
    Store-based recovery is lossless for everything durably written but
    not tick-identical (survivors replay through ``import_input``), so a
    resumed campaign's result is a superset of the on-disk state, not a
    byte-identical rerun.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    from repro.experiments.config import FUZZER_CONFIGS
    from repro.subjects import get_subject

    spec = FUZZER_CONFIGS[config_name]
    if not spec.supports_instances:
        raise ValueError(
            "config %r (%s) cannot run as parallel instances; "
            "only plain single-engine configs can" % (config_name, spec.kind)
        )

    if stats is None:
        stats = CampaignStats(label="%s/%s#%d" % (subject_name, config_name, run_seed))
    if sync_interval_ticks is None:
        sync_interval_ticks = max(1, budget_ticks // 8)
    if worker_timeout is None:
        worker_timeout = DEFAULT_WORKER_TIMEOUT
    if restart_policy is None:
        restart_policy = RestartPolicy() if supervise else RestartPolicy(max_restarts=0)
    subject = get_subject(subject_name)  # also validates the name pre-fork
    ctx = _mp_context()
    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)

    def _checkpoint_path(index):
        if not checkpoint_dir:
            return None
        return os.path.join(checkpoint_dir, "worker%d.ckpt" % index)

    # The in-flight round's run target and number (for replay).
    current = {"target": None, "round": 0}

    def spawn(worker):
        """(Re)start one worker, resuming from checkpoint or store.

        A replacement prefers its last valid checkpoint (tick-identical
        resume); the worker itself falls back to its durable store slice
        when the checkpoint is missing or refused, and to a fresh engine
        plus deterministic replay otherwise.
        """
        resume_path = None
        if (
            worker.incarnation > 0
            and worker.checkpoint_path
            and os.path.exists(worker.checkpoint_path)
        ):
            resume_path = worker.checkpoint_path
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_instance_worker,
            args=(
                child_conn,
                subject_name,
                config_name,
                run_seed,
                worker.index,
                budget_ticks,
                resume_path,
                worker.incarnation,
                output_dir,
                resume_store,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker.attach(proc, parent_conn)
        ready = recv_with_deadline(parent_conn, worker_timeout, worker.index, "ready")
        worker.resumed_round = ready[1]
        if len(ready) > 2 and ready[2]:
            logger.warning(
                "worker %d refused checkpoint %s (%s)",
                worker.index,
                worker.checkpoint_path,
                ready[2],
            )

    def _step(worker, command, expected):
        """One unsupervised round trip (used inside replay)."""
        try:
            worker.conn.send(command)
        except (OSError, ValueError) as exc:
            raise WorkerDeadError(worker.index, "pipe closed on send (%s)" % (exc,))
        return recv_with_deadline(worker.conn, worker_timeout, worker.index, expected)

    def replay(worker):
        """Bring a respawned worker back to the current protocol position.

        Replays the completed rounds its restored state does not yet embody
        (run target + the exact import list the parent broadcast, or a
        directory re-scan for store-synced rounds), then the current
        round's processed prefix.  Replies are discarded — the parent
        already merged the originals; pipe-mode replay is deterministic,
        and directory-mode re-scans are idempotent by content hash.
        """
        for round_no, (target, imports) in enumerate(
            worker.history[worker.resumed_round :], start=worker.resumed_round + 1
        ):
            _step(worker, ("run", target), "synced")
            if imports == _DIR_SYNC:
                _step(worker, ("sync_dir", round_no), "imported")
            elif imports:
                _step(worker, ("import", list(imports)), "imported")
        if current["target"] is not None and worker.stage >= 1:
            _step(worker, ("run", current["target"]), "synced")
            if worker.stage >= 2:
                if worker.pending_imports == _DIR_SYNC:
                    _step(worker, ("sync_dir", current["round"]), "imported")
                elif worker.pending_imports:
                    _step(worker, ("import", list(worker.pending_imports)), "imported")

    sup = Supervisor(
        [
            SupervisedWorker(i, checkpoint_path=_checkpoint_path(i))
            for i in range(workers)
        ],
        spawn,
        replay,
        policy=restart_policy,
        timeout=worker_timeout,
        stats=stats,
    )
    from repro.telemetry.bus import CampaignEvent, SpanEvent

    stats.bus.publish(
        CampaignEvent(
            "begin",
            subject_name,
            config_name,
            run_seed,
            workers=workers,
            budget=budget_ticks,
        )
    )
    worker_results = []
    try:
        sup.spawn_all()
        # Shared-corpus state: content hashes ever seen (pre-seeded with the
        # subject's own seeds, which every instance already holds) and the
        # merged virgin map under the campaign feedback.
        seen = {input_hash(seed) for seed in subject.seeds}
        virgin = VirginMap()
        corpus_size = 0
        targets = list(range(sync_interval_ticks, budget_ticks, sync_interval_ticks))
        targets.append(budget_ticks)
        for round_no, target in enumerate(targets, start=1):
            round_start = time.monotonic()
            current["target"] = target
            current["round"] = round_no
            for worker in sup.alive():
                worker.stage = 0
                worker.pending_imports = ()
            offered = 0
            accepted_before = corpus_size
            broadcasts = {worker.index: [] for worker in sup.alive()}
            # Run to the barrier and (pipe mode) collect/merge in
            # worker-index order: deterministic.
            for worker in sup.alive():
                try:
                    reply = sup.request(worker, ("run", target), "synced")
                except WorkerLostError:
                    if not supervise:
                        raise
                    continue
                worker.stage = 1
                _, fresh, worker_stats = reply
                stats.record_worker(
                    worker.index,
                    worker_stats["ticks"],
                    worker_stats["execs"],
                    worker_stats["queue"],
                    worker_stats["crashes"],
                    worker_stats["hangs"],
                    coverage=worker_stats.get("coverage", 0),
                )
                offered += len(fresh)
                for data, classified in fresh:
                    digest = input_hash(data)
                    if digest in seen:
                        continue
                    seen.add(digest)
                    new_indices, new_buckets = virgin.probe(classified)
                    if not (new_indices or new_buckets):
                        continue
                    virgin.merge(classified)
                    corpus_size += 1
                    for other in sup.alive():
                        if other.index != worker.index and other.index in broadcasts:
                            broadcasts[other.index].append(data)
            imported = [0] * workers
            if output_dir:
                # Directory sync: every worker scans the sibling slices it
                # has not seen yet (AFL's foreign-queue pass).  The barrier
                # above guarantees all round-``round_no`` artifacts are
                # already renamed into place.
                for worker in sup.alive():
                    worker.pending_imports = _DIR_SYNC
                    try:
                        reply = sup.request(worker, ("sync_dir", round_no), "imported")
                    except WorkerLostError:
                        if not supervise:
                            raise
                        continue
                    imported[worker.index] = reply[1]
                    offered += reply[2]
                    corpus_size += reply[1]
                    worker.stage = 2
            else:
                for worker in sup.alive():
                    blob = broadcasts.get(worker.index, ())
                    worker.pending_imports = tuple(blob)
                    if blob:
                        try:
                            reply = sup.request(
                                worker, ("import", list(blob)), "imported"
                            )
                        except WorkerLostError:
                            if not supervise:
                                raise
                            continue
                        imported[worker.index] = reply[1]
                    worker.stage = 2
            if checkpoint_dir:
                for worker in sup.alive():
                    try:
                        sup.request(
                            worker,
                            ("checkpoint", worker.checkpoint_path, round_no),
                            "checkpointed",
                        )
                    except WorkerLostError:
                        if not supervise:
                            raise
                        continue
            for worker in sup.alive():
                worker.history.append((target, worker.pending_imports))
                worker.stage = 0
                worker.pending_imports = ()
            current["target"] = None
            stats.record_sync(target, offered, corpus_size - accepted_before, imported)
            # One coarse span per sync barrier: how long the whole round
            # (run + merge + broadcast + checkpoint) took in wall time.
            stats.bus.publish(
                SpanEvent(
                    "sync_round",
                    time.monotonic() - round_start,
                    tick=target,
                    attrs={"round": round_no},
                )
            )
        for worker in sup.alive():
            try:
                reply = sup.request(worker, ("finish",), "result")
            except WorkerLostError:
                if not supervise:
                    raise
                continue
            worker_results.append(reply[1])
    finally:
        sup.terminate_all()
    if not worker_results:
        raise RuntimeError(
            "campaign %s/%s#%d lost all %d workers; no results to merge"
            % (subject_name, config_name, run_seed, workers)
        )
    stats.bus.publish(
        CampaignEvent(
            "end",
            subject_name,
            config_name,
            run_seed,
            workers=workers,
            budget=budget_ticks,
        )
    )
    stats.bus.flush()
    dropped = [worker for worker in sup.workers if not worker.alive]
    if output_dir:
        # Durable mode: the workspace is the source of truth.  The campaign
        # corpus is the union of distinct content hashes across all worker
        # queue slices (seeds included — the dry run streams them to disk).
        from repro.fuzzer.store import campaign_queue_hashes

        queue_size = len(campaign_queue_hashes(output_dir))
    else:
        queue_size = len(subject.seeds) + corpus_size
    merged = merge_instance_results(
        subject_name,
        config_name,
        run_seed,
        worker_results,
        queue_size=queue_size,
        degraded=bool(dropped),
        degraded_reasons=stats.degraded_reasons(),
        worker_restarts=tuple(worker.restarts for worker in sup.workers),
    )
    return merged, worker_results, stats
