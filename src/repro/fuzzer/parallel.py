"""Parallel campaign execution.

Two multiprocess modes, mirroring how the paper's evaluation was deployed
on a many-core server:

**Matrix parallelism** (:func:`run_cells`, :func:`run_matrix_parallel`)
    fans independent (subject, config, run-seed) campaign cells out over a
    pool of worker *processes*.  Each cell runs in a process of its own, so
    a worker that raises, hangs past its deadline, or dies outright marks
    only its cell failed — the rest of the matrix completes.  Per-cell RNGs
    are derived from the cell key (see ``campaign_rng``), so a parallel run
    is byte-identical to the sequential one, and workers share the runner's
    on-disk result cache.

**Instance parallelism** (:func:`run_instance_campaign`)
    an AFL++-style main/secondary campaign: N engine workers fuzz the *same*
    subject under the same config (distinct per-instance RNG streams) and
    periodically exchange interesting inputs through a parent-mediated
    corpus sync.  The merge policy is AFL's: candidates are deduplicated by
    input hash, admitted only if they add (index, bucket) novelty to the
    shared virgin map under the campaign's own feedback, and broadcast to
    every other worker, which re-executes them locally before queueing
    (``import_input``).  Sync rounds are barriers driven in worker order,
    so the whole campaign is deterministic for a fixed worker count.

Both modes report progress through :mod:`repro.fuzzer.stats`.
"""

import hashlib
import multiprocessing
import time
from collections import deque
from multiprocessing import connection

from repro.coverage.bitmap import VirginMap
from repro.fuzzer.stats import CampaignStats, MatrixProgress


def _mp_context():
    """Prefer fork (cheap, inherits built subjects); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- matrix parallelism --------------------------------------------------------


class CellFailure(object):
    """Why one matrix cell produced no result."""

    __slots__ = ("key", "kind", "message")

    def __init__(self, key, kind, message):
        self.key = key
        self.kind = kind  # "error" | "crashed" | "timeout"
        self.message = message

    def __repr__(self):
        return "CellFailure(%s: %s, %s)" % (self.key, self.kind, self.message)


class ParallelMatrixError(RuntimeError):
    """Raised after a parallel matrix finishes with failed cells.

    The run is never aborted early: every other cell completes first, and
    ``partial_results`` carries everything that did succeed.
    """

    def __init__(self, failures, partial_results):
        self.failures = list(failures)
        self.partial_results = partial_results
        lines = ["%d matrix cell(s) failed:" % len(self.failures)]
        for failure in self.failures:
            lines.append(
                "  %s: [%s] %s" % (failure.key, failure.kind, failure.message)
            )
        super().__init__("\n".join(lines))


def run_campaign_cell(task):
    """Default cell body: one cached campaign (runs inside the worker)."""
    from repro.experiments.runner import campaign

    return campaign(*task)


def _cell_entry(conn, cell_fn, task):
    """Worker process entry: run the cell, ship the outcome, exit."""
    try:
        result = cell_fn(task)
        conn.send(("ok", result))
    except BaseException as exc:  # report *any* failure, then die quietly
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def run_cells(tasks, jobs, timeout=None, cell_fn=None, progress=None):
    """Run independent campaign cells over ``jobs`` worker processes.

    ``tasks`` maps cell key -> argument tuple for ``cell_fn`` (default:
    :func:`run_campaign_cell`).  Returns ``(results, failures)`` where
    ``results`` maps key -> cell result and ``failures`` lists a
    :class:`CellFailure` per cell that raised ("error"), died without
    reporting ("crashed"), or exceeded ``timeout`` wall seconds
    ("timeout").  A failing cell never aborts the others.
    """
    cell_fn = run_campaign_cell if cell_fn is None else cell_fn
    jobs = max(1, int(jobs))
    if progress is None:
        progress = MatrixProgress(total=len(tasks))
    ctx = _mp_context()
    pending = deque(tasks.items())
    running = {}  # recv conn -> (key, process, started, deadline)
    results = {}
    failures = []

    def finish(conn, status, wall, execs=0):
        key = running[conn][0]
        del running[conn]
        conn.close()
        progress.record_cell(key, status, wall, execs)

    while pending or running:
        while pending and len(running) < jobs:
            key, task = pending.popleft()
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_cell_entry, args=(send_conn, cell_fn, task), daemon=True
            )
            proc.start()
            send_conn.close()
            started = time.monotonic()
            deadline = started + timeout if timeout else None
            running[recv_conn] = (key, proc, started, deadline)
        wait_for = None
        deadlines = [d for (_, _, _, d) in running.values() if d is not None]
        if deadlines:
            wait_for = max(0.0, min(deadlines) - time.monotonic())
        ready = connection.wait(list(running), timeout=wait_for)
        now = time.monotonic()
        if not ready:
            for conn, (key, proc, started, deadline) in list(running.items()):
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    proc.join()
                    failures.append(
                        CellFailure(
                            key, "timeout", "exceeded %.1fs wall budget" % timeout
                        )
                    )
                    finish(conn, "timeout", now - started)
            continue
        for conn in ready:
            key, proc, started, _ = running[conn]
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                proc.join()
                message = "worker died without reporting (exit code %s)" % (
                    proc.exitcode,
                )
                failures.append(CellFailure(key, "crashed", message))
                finish(conn, "crashed", now - started)
                continue
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join()
            if status == "ok":
                results[key] = payload
                finish(conn, "ok", now - started, getattr(payload, "execs", 0))
            else:
                failures.append(CellFailure(key, "error", payload))
                finish(conn, "error", now - started)
    return results, failures


def run_matrix_parallel(cells, jobs, timeout=None, progress=None):
    """Run a campaign-cell matrix; raise if any cell failed.

    ``cells`` maps (subject, config, run_seed) -> campaign argument tuple.
    On any failure, raises :class:`ParallelMatrixError` *after* every other
    cell has completed (partial results attached).
    """
    results, failures = run_cells(cells, jobs, timeout=timeout, progress=progress)
    if failures:
        raise ParallelMatrixError(failures, results)
    return results


# -- instance parallelism ------------------------------------------------------


def input_hash(data):
    """Content identity used for cross-instance corpus dedup."""
    return hashlib.sha1(bytes(data)).hexdigest()


def instance_rng_seed(subject_name, config_name, run_seed, worker_index):
    """Deterministic RNG seed unique to one engine instance."""
    digest = hashlib.sha256(
        (
            "%s|%s|%d|worker%d" % (subject_name, config_name, run_seed, worker_index)
        ).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")


def _build_instance_engine(subject_name, config_name, run_seed, worker_index):
    import random

    from repro.experiments.config import FUZZER_CONFIGS
    from repro.fuzzer.engine import FuzzEngine
    from repro.subjects import get_subject

    spec = FUZZER_CONFIGS[config_name]
    if spec.kind != "plain":
        raise ValueError(
            "instance parallelism supports plain configs only, not %r (%s)"
            % (config_name, spec.kind)
        )
    subject = get_subject(subject_name)
    rng = random.Random(
        instance_rng_seed(subject_name, config_name, run_seed, worker_index)
    )
    engine = FuzzEngine(
        subject.program,
        spec.feedback_factory(),
        subject.seeds,
        rng,
        spec.engine_config(subject),
        subject.tokens,
    )
    return subject, engine


def _instance_worker(conn, subject_name, config_name, run_seed, worker_index, budget):
    """Engine worker: obey run/import/finish commands from the parent."""
    try:
        subject, engine = _build_instance_engine(
            subject_name, config_name, run_seed, worker_index
        )
        engine.start(budget)
        reported = 0  # first entry id not yet shipped to the parent
        while True:
            command = conn.recv()
            if command[0] == "run":
                engine.run_until(command[1])
                fresh = [
                    (entry.data, entry.classified)
                    for entry in engine.queue.entries_since(reported)
                    if not entry.imported
                ]
                reported = engine.queue.next_entry_id()
                conn.send(
                    (
                        "synced",
                        fresh,
                        {
                            "ticks": engine.clock.ticks,
                            "execs": engine.execs,
                            "queue": len(engine.queue.entries),
                            "crashes": engine.crash_count,
                            "hangs": engine.hangs,
                        },
                    )
                )
            elif command[0] == "import":
                added = 0
                for data in command[1]:
                    if engine.import_input(data) is not None:
                        added += 1
                reported = engine.queue.next_entry_id()
                conn.send(("imported", added))
            elif command[0] == "finish":
                from repro.fuzzer.campaign import result_from_engines

                engine.finish()
                result = result_from_engines(
                    subject, config_name, run_seed, [engine], engine
                )
                conn.send(("result", result))
                return
            else:
                raise ValueError("unknown command %r" % (command[0],))
    except BaseException as exc:
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _recv_or_raise(conn, worker_index, expected):
    try:
        reply = conn.recv()
    except (EOFError, OSError):
        raise RuntimeError("instance worker %d died mid-campaign" % worker_index)
    if reply[0] == "error":
        raise RuntimeError("instance worker %d failed: %s" % (worker_index, reply[1]))
    if reply[0] != expected:
        raise RuntimeError(
            "instance worker %d sent %r, expected %r"
            % (worker_index, reply[0], expected)
        )
    return reply


def merge_instance_results(subject_name, config_name, run_seed, results, queue_size):
    """Fold per-worker CampaignResults into one merged campaign record.

    Crash buckets merge by stack hash (counts accumulate, earliest
    ``found_at`` wins); coverage and bug sets union; execution counts sum.
    ``ticks`` is the per-instance budget actually consumed (the wall-clock
    analogue: instances run concurrently), so the merged throughput is the
    *aggregate* execs per virtual hour across all instances.
    """
    from repro.fuzzer.campaign import CampaignResult, CrashInfo
    from repro.fuzzer.clock import TICKS_PER_HOUR

    merged = {}
    crash_count = 0
    afl_unique = 0
    execs = 0
    hangs = 0
    timeline = []
    edges = set()
    bugs = set()
    for result in results:
        crash_count += result.crash_count
        afl_unique += result.afl_unique_crash_count
        execs += result.execs
        hangs += result.hangs
        edges.update(result.edges)
        bugs.update(result.bugs)
        timeline.extend(result.timeline)
        for record in result.crash_records:
            existing = merged.get(record.hash5)
            if existing is None:
                merged[record.hash5] = CrashInfo(
                    bug=record.bug,
                    hash5=record.hash5,
                    kind=record.kind,
                    count=record.count,
                    afl_unique=record.afl_unique,
                    found_at=record.found_at,
                    stack=record.stack,
                )
            else:
                existing.count += record.count
                existing.found_at = min(existing.found_at, record.found_at)
    ticks = max((result.ticks for result in results), default=0)
    throughput = execs / (ticks / TICKS_PER_HOUR) if ticks else 0.0
    return CampaignResult(
        subject_name=subject_name,
        config_name=config_name,
        run_seed=run_seed,
        bugs=bugs,
        crash_records=list(merged.values()),
        crash_count=crash_count,
        afl_unique_crash_count=afl_unique,
        queue_size=queue_size,
        edges=frozenset(edges),
        execs=execs,
        hangs=hangs,
        ticks=ticks,
        throughput=throughput,
        timeline=sorted(timeline),
    )


def run_instance_campaign(
    subject_name,
    config_name,
    run_seed,
    budget_ticks,
    workers=2,
    sync_interval_ticks=None,
    stats=None,
):
    """AFL++-style main/secondary campaign over ``workers`` engine processes.

    Every instance fuzzes the full ``budget_ticks`` (as real instances each
    run the full wall-clock), pausing at sync barriers every
    ``sync_interval_ticks`` (default: budget / 8, the paper's round scale).
    Returns ``(merged_result, worker_results, stats)``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    from repro.experiments.config import FUZZER_CONFIGS
    from repro.subjects import get_subject

    spec = FUZZER_CONFIGS[config_name]
    if not spec.supports_instances:
        raise ValueError(
            "config %r (%s) cannot run as parallel instances; "
            "only plain single-engine configs can" % (config_name, spec.kind)
        )

    if stats is None:
        stats = CampaignStats(label="%s/%s#%d" % (subject_name, config_name, run_seed))
    if sync_interval_ticks is None:
        sync_interval_ticks = max(1, budget_ticks // 8)
    subject = get_subject(subject_name)  # also validates the name pre-fork
    ctx = _mp_context()
    conns = []
    procs = []
    try:
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_instance_worker,
                args=(
                    child_conn,
                    subject_name,
                    config_name,
                    run_seed,
                    index,
                    budget_ticks,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        # Shared-corpus state: content hashes ever seen (pre-seeded with the
        # subject's own seeds, which every instance already holds) and the
        # merged virgin map under the campaign feedback.
        seen = {input_hash(seed) for seed in subject.seeds}
        virgin = VirginMap()
        corpus_size = 0
        targets = list(range(sync_interval_ticks, budget_ticks, sync_interval_ticks))
        targets.append(budget_ticks)
        for target in targets:
            for conn in conns:
                conn.send(("run", target))
            offered = 0
            accepted_before = corpus_size
            broadcasts = [[] for _ in range(workers)]
            # Collect and merge in worker-index order: deterministic.
            for index, conn in enumerate(conns):
                _, fresh, worker_stats = _recv_or_raise(conn, index, "synced")
                stats.record_worker(
                    index,
                    worker_stats["ticks"],
                    worker_stats["execs"],
                    worker_stats["queue"],
                    worker_stats["crashes"],
                    worker_stats["hangs"],
                )
                offered += len(fresh)
                for data, classified in fresh:
                    digest = input_hash(data)
                    if digest in seen:
                        continue
                    seen.add(digest)
                    new_indices, new_buckets = virgin.probe(classified)
                    if not (new_indices or new_buckets):
                        continue
                    virgin.merge(classified)
                    corpus_size += 1
                    for other in range(workers):
                        if other != index:
                            broadcasts[other].append(data)
            imported = [0] * workers
            for index, conn in enumerate(conns):
                if broadcasts[index]:
                    conn.send(("import", broadcasts[index]))
            for index, conn in enumerate(conns):
                if broadcasts[index]:
                    imported[index] = _recv_or_raise(conn, index, "imported")[1]
            stats.record_sync(target, offered, corpus_size - accepted_before, imported)
        worker_results = []
        for index, conn in enumerate(conns):
            conn.send(("finish",))
            worker_results.append(_recv_or_raise(conn, index, "result")[1])
        for proc in procs:
            proc.join()
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join()
    merged = merge_instance_results(
        subject_name,
        config_name,
        run_seed,
        worker_results,
        queue_size=len(subject.seeds) + corpus_size,
    )
    return merged, worker_results, stats
