"""Mutation operators.

The havoc stage stacks a random number of the operators below, as AFL++
does; the reduced ``legacy`` set approximates the older AFL 2.52b stack used
by the PathAFL/AFL baselines (no dictionary-less token intelligence, fewer
width-aware arithmetic variants).

All operators work on a ``bytearray`` and respect ``max_len``.
"""

INTERESTING_8 = (-128, -1, 0, 1, 16, 32, 64, 100, 127)
INTERESTING_16 = (-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767)
INTERESTING_32 = (-2147483648, -100663046, 32768, 65535, 65536, 100663045, 2147483647)

ARITH_MAX = 35


def _clip_start(rng, data, width):
    if len(data) < width:
        return None
    return rng.randrange(len(data) - width + 1)


def flip_bit(rng, data, max_len):
    if not data:
        return False
    pos = rng.randrange(len(data) * 8)
    data[pos >> 3] ^= 128 >> (pos & 7)
    return True


def set_random_byte(rng, data, max_len):
    if not data:
        return False
    data[rng.randrange(len(data))] = rng.randrange(256)
    return True


def set_interesting_byte(rng, data, max_len):
    if not data:
        return False
    data[rng.randrange(len(data))] = rng.choice(INTERESTING_8) & 0xFF
    return True


def set_interesting_word(rng, data, max_len):
    start = _clip_start(rng, data, 2)
    if start is None:
        return False
    value = rng.choice(INTERESTING_16) & 0xFFFF
    big = rng.random() < 0.5
    data[start : start + 2] = value.to_bytes(2, "big" if big else "little")
    return True


def set_interesting_dword(rng, data, max_len):
    start = _clip_start(rng, data, 4)
    if start is None:
        return False
    value = rng.choice(INTERESTING_32) & 0xFFFFFFFF
    big = rng.random() < 0.5
    data[start : start + 4] = value.to_bytes(4, "big" if big else "little")
    return True


def arith_byte(rng, data, max_len):
    if not data:
        return False
    pos = rng.randrange(len(data))
    delta = rng.randrange(1, ARITH_MAX + 1)
    if rng.random() < 0.5:
        delta = -delta
    data[pos] = (data[pos] + delta) & 0xFF
    return True


def arith_word(rng, data, max_len):
    start = _clip_start(rng, data, 2)
    if start is None:
        return False
    big = rng.random() < 0.5
    order = "big" if big else "little"
    value = int.from_bytes(data[start : start + 2], order)
    delta = rng.randrange(1, ARITH_MAX + 1)
    if rng.random() < 0.5:
        delta = -delta
    data[start : start + 2] = ((value + delta) & 0xFFFF).to_bytes(2, order)
    return True


def clone_block(rng, data, max_len):
    if not data or len(data) >= max_len:
        return False
    size = rng.randrange(1, min(len(data), max_len - len(data)) + 1)
    src = rng.randrange(len(data) - size + 1)
    dst = rng.randrange(len(data) + 1)
    data[dst:dst] = data[src : src + size]
    return True


def insert_random_block(rng, data, max_len):
    if len(data) >= max_len:
        return False
    size = rng.randrange(1, min(16, max_len - len(data)) + 1)
    dst = rng.randrange(len(data) + 1)
    data[dst:dst] = bytes(rng.randrange(256) for _ in range(size))
    return True


def delete_block(rng, data, max_len):
    if len(data) < 2:
        return False
    size = rng.randrange(1, len(data))
    start = rng.randrange(len(data) - size + 1)
    del data[start : start + size]
    return True


def overwrite_block(rng, data, max_len):
    if len(data) < 2:
        return False
    size = rng.randrange(1, len(data))
    src = rng.randrange(len(data) - size + 1)
    dst = rng.randrange(len(data) - size + 1)
    data[dst : dst + size] = data[src : src + size]
    return True


def _dict_op(insert):
    def op(rng, data, max_len, tokens):
        if not tokens:
            return False
        token = rng.choice(tokens)
        if insert:
            if len(data) + len(token) > max_len:
                return False
            dst = rng.randrange(len(data) + 1)
            data[dst:dst] = token
            return True
        if len(token) > len(data):
            return False
        dst = rng.randrange(len(data) - len(token) + 1)
        data[dst : dst + len(token)] = token
        return True

    return op


overwrite_token = _dict_op(insert=False)
insert_token = _dict_op(insert=True)

# The modern (AFL++-like) havoc repertoire.
HAVOC_OPS = (
    flip_bit,
    set_random_byte,
    set_interesting_byte,
    set_interesting_word,
    set_interesting_dword,
    arith_byte,
    arith_word,
    clone_block,
    insert_random_block,
    delete_block,
    overwrite_block,
)

# The reduced AFL 2.52b-era repertoire for the baselines of Appendix C.
LEGACY_OPS = (
    flip_bit,
    set_random_byte,
    set_interesting_byte,
    arith_byte,
    clone_block,
    delete_block,
    overwrite_block,
)


def havoc(rng, data, max_len, tokens=(), legacy=False):
    """Apply a stacked random mutation to ``data`` (returns a new bytes).

    Stacks ``2**(1..6)`` operators as AFL does; dictionary operators join
    the pool when ``tokens`` are available.
    """
    buf = bytearray(data)
    ops = LEGACY_OPS if legacy else HAVOC_OPS
    stacking = 1 << rng.randrange(1, 7)
    for _ in range(stacking):
        if tokens and rng.random() < 0.15:
            if rng.random() < 0.5:
                overwrite_token(rng, buf, max_len, tokens)
            else:
                insert_token(rng, buf, max_len, tokens)
            continue
        op = rng.choice(ops)
        op(rng, buf, max_len)
    if not buf:
        buf.append(rng.randrange(256))
    return bytes(buf)


def splice(rng, first, second):
    """AFL's splice: the head of one input glued to the tail of another."""
    if not first or not second:
        return bytes(first or second or b"\x00")
    cut_a = rng.randrange(1, len(first) + 1)
    cut_b = rng.randrange(len(second) + 1)
    return bytes(first[:cut_a] + second[cut_b:])


def deterministic_mutations(data, tokens=()):
    """A light deterministic stage: walking byte flips + token overwrites.

    Yields candidate inputs.  AFL++ skips full deterministic stages by
    default; this trimmed version is only run for favored entries when the
    engine is configured with ``use_det=True``.
    """
    for pos in range(len(data)):
        buf = bytearray(data)
        buf[pos] ^= 0xFF
        yield bytes(buf)
    for token in tokens:
        for pos in range(0, max(len(data) - len(token) + 1, 0), max(len(token), 1)):
            buf = bytearray(data)
            buf[pos : pos + len(token)] = token
            yield bytes(buf)
