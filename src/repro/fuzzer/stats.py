"""Campaign observability: per-worker throughput, queue growth, sync events.

Both parallel modes (matrix fan-out and main/secondary instance campaigns)
report their progress through the structures here.  Events are kept in
memory (tests and callers inspect them) *and* published as typed events on
the :mod:`repro.telemetry` bus, whose default ``LogSink`` mirrors them to
the ``repro.fuzzer.parallel`` logger with the same line formats as before —
enable ``logging.basicConfig(level=logging.INFO)`` or the CLI's global
``--verbose`` flag to watch a campaign live, or attach a JSONL sink
(``fuzz --trace``) to persist them.

Wall-clock seconds here are real (``time.monotonic``); "virtual" rates are
executions per virtual hour, the deterministic clock's native unit.
"""

import logging
import time

from repro.fuzzer.clock import TICKS_PER_HOUR
from repro.telemetry.bus import (
    CellEvent,
    CellRetryEvent,
    SyncRoundEvent,
    WorkerDroppedEvent,
    WorkerProgressEvent,
    WorkerRestartEvent,
    get_bus,
)

logger = logging.getLogger("repro.fuzzer.parallel")


class WorkerSample:
    """One per-worker progress snapshot taken at a sync barrier."""

    __slots__ = (
        "worker",
        "tick",
        "execs",
        "queue_size",
        "crashes",
        "hangs",
        "wall",
        "coverage",
    )

    def __init__(
        self, worker, tick, execs, queue_size, crashes, hangs, wall, coverage=0
    ):
        self.worker = worker
        self.tick = tick
        self.execs = execs
        self.queue_size = queue_size
        self.crashes = crashes
        self.hangs = hangs
        self.wall = wall
        self.coverage = coverage

    def execs_per_vhour(self):
        """Executions per virtual hour so far (0 before the first tick)."""
        if self.tick <= 0:
            return 0.0
        return self.execs / (self.tick / TICKS_PER_HOUR)

    def execs_per_sec(self):
        """Executions per wall-clock second so far (0 before any wall time)."""
        if self.wall <= 0:
            return 0.0
        return self.execs / self.wall

    def __repr__(self):
        return "WorkerSample(w%d @%d: execs=%d, queue=%d)" % (
            self.worker,
            self.tick,
            self.execs,
            self.queue_size,
        )


class SyncEvent:
    """One corpus-sync round: what was offered, what survived the merge."""

    __slots__ = ("tick", "offered", "accepted", "imported_per_worker", "wall")

    def __init__(self, tick, offered, accepted, imported_per_worker, wall):
        self.tick = tick
        self.offered = offered
        self.accepted = accepted
        self.imported_per_worker = imported_per_worker
        self.wall = wall

    def __repr__(self):
        return "SyncEvent(@%d: offered=%d, accepted=%d)" % (
            self.tick,
            self.offered,
            self.accepted,
        )


class RestartEvent:
    """One supervised worker restart (death/stall -> backoff -> respawn)."""

    __slots__ = ("worker", "attempt", "reason", "delay", "wall")

    def __init__(self, worker, attempt, reason, delay, wall):
        self.worker = worker
        self.attempt = attempt  # 1-based restart count for this worker
        self.reason = reason
        self.delay = delay
        self.wall = wall

    def __repr__(self):
        return "RestartEvent(w%d #%d: %s)" % (self.worker, self.attempt, self.reason)


class CampaignStats:
    """Progress log of one instance-parallel campaign.

    Every ``record_*`` call keeps its legacy in-memory record *and*
    publishes the corresponding typed event on ``bus`` (the process-global
    telemetry bus by default, whose LogSink preserves the old logger
    mirroring line for line).
    """

    def __init__(self, label="", bus=None):
        self.label = label
        self.bus = bus if bus is not None else get_bus()
        self.samples = []
        self.sync_events = []
        self.restarts = []
        self.degraded_workers = []  # (worker, reason) of dropped workers
        self.degraded_details = []  # {worker, reason, cause, detail} dicts
        self._start = time.monotonic()

    def elapsed(self):
        return time.monotonic() - self._start

    def record_worker(
        self, worker, tick, execs, queue_size, crashes, hangs=0, coverage=0
    ):
        sample = WorkerSample(
            worker, tick, execs, queue_size, crashes, hangs, self.elapsed(), coverage
        )
        self.samples.append(sample)
        self.bus.publish(
            WorkerProgressEvent(
                self.label,
                worker,
                tick,
                execs,
                queue_size,
                crashes,
                hangs,
                coverage=coverage,
                elapsed=sample.wall,
            )
        )
        return sample

    def record_sync(self, tick, offered, accepted, imported_per_worker=()):
        event = SyncEvent(
            tick, offered, accepted, tuple(imported_per_worker), self.elapsed()
        )
        self.sync_events.append(event)
        self.bus.publish(
            SyncRoundEvent(
                self.label,
                tick,
                offered,
                accepted,
                imported=event.imported_per_worker,
                elapsed=event.wall,
            )
        )
        return event

    def record_restart(self, worker, attempt, reason, delay):
        event = RestartEvent(worker, attempt, reason, delay, self.elapsed())
        self.restarts.append(event)
        self.bus.publish(
            WorkerRestartEvent(
                self.label, worker, attempt, reason, delay, elapsed=event.wall
            )
        )
        return event

    def record_degraded(self, worker, reason, cause="unknown", detail=None):
        self.degraded_workers.append((worker, reason))
        self.degraded_details.append(
            {"worker": worker, "reason": reason, "cause": cause, "detail": detail}
        )
        self.bus.publish(
            WorkerDroppedEvent(self.label, worker, reason, cause=cause, detail=detail)
        )

    def degraded_reasons(self):
        """Degradations as ``(worker, cause, detail)`` tuples (for results)."""
        return tuple(
            (entry["worker"], entry["cause"], entry["detail"])
            for entry in self.degraded_details
        )

    def restart_counts(self, workers):
        """Per-worker restart totals as a tuple of length ``workers``."""
        counts = [0] * workers
        for event in self.restarts:
            if 0 <= event.worker < workers:
                counts[event.worker] = max(counts[event.worker], event.attempt)
        return tuple(counts)

    def latest_samples(self):
        """The most recent sample of every worker, keyed by worker index."""
        latest = {}
        for sample in self.samples:
            latest[sample.worker] = sample
        return latest

    def summary_lines(self):
        """Human-readable per-worker and sync totals (for the CLI)."""
        lines = []
        for worker, sample in sorted(self.latest_samples().items()):
            lines.append(
                "worker %d: %d execs (%.0f exec/vh, %.0f exec/s), "
                "queue %d, crashes %d, hangs %d"
                % (
                    worker,
                    sample.execs,
                    sample.execs_per_vhour(),
                    sample.execs_per_sec(),
                    sample.queue_size,
                    sample.crashes,
                    sample.hangs,
                )
            )
        offered = sum(e.offered for e in self.sync_events)
        accepted = sum(e.accepted for e in self.sync_events)
        lines.append(
            "syncs: %d rounds, %d inputs offered, %d accepted"
            % (len(self.sync_events), offered, accepted)
        )
        if self.restarts:
            per_worker = {}
            for event in self.restarts:
                per_worker[event.worker] = per_worker.get(event.worker, 0) + 1
            lines.append(
                "supervision: %d restart(s) (%s)"
                % (
                    len(self.restarts),
                    ", ".join(
                        "w%d x%d" % (w, n) for w, n in sorted(per_worker.items())
                    ),
                )
            )
        for worker, reason in self.degraded_workers:
            lines.append("degraded: worker %d dropped — %s" % (worker, reason))
        return lines


class CellRecord:
    """Outcome of one matrix cell (a whole campaign) in the fan-out pool."""

    __slots__ = ("key", "status", "wall", "execs", "restarts")

    def __init__(self, key, status, wall, execs, restarts=0):
        self.key = key
        self.status = status  # "ok" | "error" | "crashed" | "timeout"
        self.wall = wall
        self.execs = execs
        self.restarts = restarts  # supervised retries consumed before this outcome

    def __repr__(self):
        return "CellRecord(%s: %s in %.1fs)" % (self.key, self.status, self.wall)


class MatrixProgress:
    """Progress log of one parallel matrix run (cell completions)."""

    def __init__(self, total=0, bus=None):
        self.total = total
        self.bus = bus if bus is not None else get_bus()
        self.cells = []
        self._start = time.monotonic()

    def record_cell(self, key, status, wall, execs=0, restarts=0):
        record = CellRecord(key, status, wall, execs, restarts)
        self.cells.append(record)
        self.bus.publish(
            CellEvent(
                key,
                status,
                wall,
                execs=execs,
                restarts=restarts,
                done=len(self.cells),
                total=self.total,
            )
        )
        return record

    def record_retry(self, key, attempt, kind, delay):
        """A cell failed transiently and will be restarted after ``delay``s."""
        self.bus.publish(CellRetryEvent(key, attempt, kind, delay))

    def completed(self):
        return [c for c in self.cells if c.status == "ok"]

    def failed(self):
        return [c for c in self.cells if c.status != "ok"]
