"""The durable campaign workspace (AFL-style output directory).

Long campaigns survive machine trouble because the *filesystem*, not the
fuzzer process, is the source of truth: AFL's ``out/<instance>/queue/``,
``crashes/`` and ``hangs/`` directories are what secondary instances sync
through and what a killed campaign resumes from.  This module is that layout
for the reproduction:

::

    out/
      <worker>/                 "main" (single instance) or "w0", "w1", ...
        LOCK                    pidfile; two campaigns cannot share a worker dir
        manifest.json           versioned campaign identity + round watermark
        fuzzer_stats            AFL-style ``key : value`` progress summary
        queue/                  id:NNNNNN,hash:<sha1> retained inputs
        crashes/                id:NNNNNN,sig:<hash5>,hash:<sha1> + triage sidecars
        hangs/                  id:NNNNNN,hash:<sha1> hanging inputs
        quarantine/             torn / hash-mismatched files the scanner evicted

Every write is atomic (tmp + ``fsync`` + ``os.replace``), so a file either
exists whole or not at all; a crash mid-write leaves at worst a stale
``*.tmp`` that the next scan quarantines.  Artifact names embed the content
hash, which makes the store content-addressed (cross-instance dedup needs no
index) and *self-verifying*: the tolerant scanner (:meth:`CampaignStore.scan`)
re-hashes every file, moves anything torn, truncated, misnamed, or
bit-rotted into ``quarantine/`` — counted, logged, published to telemetry,
never fatal — and hands the survivors back for deterministic re-execution
through :meth:`~repro.fuzzer.engine.FuzzEngine.import_input`
(:meth:`CampaignStore.replay_into`).

The store is an *observer* of the engine, like telemetry: it charges no
virtual clock, draws no RNG, and is excluded from checkpoints; a campaign
with a store attached is field-for-field equal to one without.

Fault injection (:mod:`repro.fuzzer.faultinject`) targets store paths with
``torn-write`` / ``corrupt-file`` actions keyed on the store's write
counter, so the quarantine-and-continue path is provable in CI rather than
hoped for.
"""

import errno
import hashlib
import json
import logging
import os
import socket
import time

logger = logging.getLogger("repro.fuzzer.store")

#: Manifest format version; bumped on incompatible layout changes.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATS_NAME = "fuzzer_stats"
LOCK_NAME = "LOCK"
QUEUE_DIR = "queue"
CRASH_DIR = "crashes"
HANG_DIR = "hangs"
QUARANTINE_DIR = "quarantine"

#: Name of the single-instance worker slice (AFL++ calls it "default").
MAIN_WORKER = "main"

#: Lease on a steal marker: a stealer wedged on one host cannot block
#: other hosts past this many seconds.
_STEAL_MARKER_TTL = 30.0

_ID_WIDTH = 6


class StoreError(RuntimeError):
    """Base class: the campaign workspace cannot be used."""


class StoreLockError(StoreError):
    """Another live campaign owns this worker directory."""

    def __init__(self, path, owner_pid, owner_host=None):
        self.path = path
        self.owner_pid = owner_pid
        self.owner_host = owner_host
        where = (
            "pid %s" % owner_pid
            if owner_host is None
            else "%s pid %s" % (owner_host, owner_pid)
        )
        super().__init__(
            "%s is locked by live campaign %s; refusing to share an "
            "output directory between two campaigns" % (path, where)
        )


class StoreFencedError(StoreError):
    """This process's lock was stolen: its lease expired and a successor
    re-acquired the directory.  Any further write would land in the
    successor's slice — the fenced owner must stop, not retry."""

    def __init__(self, path, owner):
        self.path = path
        self.owner = owner
        super().__init__(
            "%s: lease lost — the lock now names %s; this writer is fenced"
            % (path, owner)
        )


class StoreMismatchError(StoreError):
    """The directory's manifest names a different campaign."""

    def __init__(self, path, field, expected, found):
        self.path = path
        self.field = field
        self.expected = expected
        self.found = found
        super().__init__(
            "%s was written by a different campaign: manifest %s is %r, "
            "this campaign is %r (use a fresh --output directory)"
            % (path, field, found, expected)
        )


def content_hash(data):
    """Content identity of one input (same digest the corpus sync uses)."""
    return hashlib.sha1(bytes(data)).hexdigest()


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically: tmp + flush + fsync + rename.

    A crash at any point leaves either the old file (or nothing) at ``path``
    plus at worst a ``*.tmp.<pid>`` the scanner later quarantines — never a
    half-written artifact under the real name.
    """
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def _fsync_dir(path):
    """Best-effort directory fsync so renames survive power loss too."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def lock_host():
    """This actor's host identity as embedded in lock payloads.

    ``REPRO_HOST`` overrides the real hostname — that is how tests (and the
    two-host CI matrix) simulate distinct hosts sharing one filesystem.
    Separator characters are squashed so the payload stays parseable.
    """
    host = os.environ.get("REPRO_HOST") or socket.gethostname() or "localhost"
    return "".join("-" if ch in ":, \t\n\r" else ch for ch in host)


class LockRecord:
    """Parsed contents of one pidfile/lease lock.

    Two payload formats coexist on disk (mixed-format roots are normal
    during a rolling upgrade):

    - legacy: ``<pid>\\n`` — host-blind, liveness = local pid check;
    - lease:  ``<host>:<pid>:<epoch>:<expiry>\\n`` — host-qualified, with
      a fencing ``epoch`` and a wall-clock lease ``expiry`` (the literal
      ``-`` means "no lease": liveness falls back to same-host pid rules).
    """

    __slots__ = ("host", "pid", "epoch", "expiry", "legacy")

    def __init__(self, host, pid, epoch=0, expiry=None, legacy=False):
        self.host = host
        self.pid = int(pid)
        self.epoch = int(epoch)
        self.expiry = None if expiry is None else float(expiry)
        self.legacy = bool(legacy)

    def expired(self, now=None):
        """True once the lease deadline has passed (never for no-lease)."""
        if self.expiry is None:
            return False
        return (time.time() if now is None else now) >= self.expiry

    def names(self, host, pid, epoch=None):
        """Whether this record identifies the given owner."""
        if self.legacy:
            return self.pid == pid
        if self.host != host or self.pid != pid:
            return False
        return epoch is None or self.epoch == epoch

    def __repr__(self):
        if self.legacy:
            return "LockRecord(pid %d, legacy)" % self.pid
        return "LockRecord(%s:%d:%d:%s)" % (
            self.host,
            self.pid,
            self.epoch,
            "-" if self.expiry is None else "%.3f" % self.expiry,
        )


def format_lock_payload(host, pid, epoch=0, expiry=None):
    """Serialize a lease lock record (``expiry=None`` -> no lease)."""
    return "%s:%d:%d:%s\n" % (
        host,
        pid,
        epoch,
        "-" if expiry is None else "%.3f" % expiry,
    )


def read_lock_record(lock_path):
    """Parse a lock file (either format) into a :class:`LockRecord`.

    Returns None when the file is missing, unreadable, or unparseable —
    satellite of the tolerant-scan philosophy: damage never raises here.
    """
    try:
        with open(lock_path, "rb") as handle:
            text = handle.read().decode("ascii", "replace").strip()
    except OSError:
        return None
    if not text:
        return None
    head = text.split()[0]
    if ":" not in head:
        try:
            return LockRecord(None, int(head), legacy=True)
        except ValueError:
            return None
    parts = head.split(":")
    if len(parts) != 4:
        return None
    host, pid, epoch, expiry = parts
    try:
        return LockRecord(
            host, int(pid), int(epoch), None if expiry == "-" else float(expiry)
        )
    except ValueError:
        return None


def read_pidfile_owner(lock_path):
    """The pid recorded in a pidfile lock, or None if unreadable/missing.

    Tolerates both the legacy bare-pid payload and the host-qualified
    lease payload, so mixed-format roots keep working during upgrades.
    """
    record = read_lock_record(lock_path)
    return record.pid if record is not None else None


def _lock_is_stale(record, now=None):
    """Whether a lock record may be stolen.

    Legacy (host-blind) locks keep the pid-liveness rule.  Lease locks are
    stealable once *expired* — the whole point: a paused VM or partitioned
    host cannot be pid-probed, but its lease runs out on its own.  A live,
    unexpired lease from another host is never stale; an unexpired no-lease
    lock from another host is conservatively never stale either (refusal
    beats corruption when liveness is unknowable).
    """
    if record is None:
        return True
    if record.legacy:
        return not _pid_alive(record.pid)
    same_host = record.host == lock_host()
    if same_host and not _pid_alive(record.pid):
        return True
    if record.expiry is not None:
        return record.expired(now)
    return False


def _steal_stale_lock(directory, lock_path):
    """Remove a stale (dead-owner) pidfile lock, marker-guarded.

    Two concurrent openers can both observe the same stale lock; naive
    ``unlink`` lets the slower one remove the *winner's* fresh lock, and
    both end up holding the directory.  The steal is therefore serialized
    through an ``O_EXCL`` marker file: only the marker holder may unlink,
    and it re-reads the owner *under the marker* so a lock re-taken by a
    live process in the meantime survives.  Returns to the caller's
    acquire loop either way; raises :class:`StoreLockError` when the lock
    (or the marker) turns out to be held by a live process after all.
    """
    marker = lock_path + ".steal"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno != errno.EEXIST:
            raise
        # Another opener is mid-steal.  A live marker holder owns the right
        # to the lock — that is contention, not staleness.  A dead (or
        # lease-expired) one left its marker behind; clear it and retry.
        marker_record = read_lock_record(marker)
        if marker_record is not None and not _lock_is_stale(marker_record):
            raise StoreLockError(
                directory, marker_record.pid, owner_host=marker_record.host
            )
        try:
            os.unlink(marker)
        except OSError:
            pass
        return
    try:
        # The marker carries a short lease of its own, so a steal wedged on
        # one host cannot block other hosts forever.
        os.write(
            fd,
            format_lock_payload(
                lock_host(), os.getpid(), 0, time.time() + _STEAL_MARKER_TTL
            ).encode("ascii"),
        )
    finally:
        os.close(fd)
    try:
        record = read_lock_record(lock_path)
        if _lock_is_stale(record):
            logger.warning(
                "%s: stealing stale lock left by %s",
                directory,
                record if record is not None else "an unreadable owner",
            )
            try:
                os.unlink(lock_path)
            except OSError:
                pass
    finally:
        try:
            os.unlink(marker)
        except OSError:
            pass


def acquire_pidfile_lock(directory, fsync=True, ttl=None, epoch=0, clock=None):
    """Take the exclusive lock on ``directory``; returns its path.

    The payload is the host-qualified lease format
    (``host:pid:epoch:expiry``); ``ttl=None`` writes a no-lease lock whose
    liveness follows the same-host pid rules, ``ttl=<secs>`` a lease that
    other hosts may steal once it expires.  ``epoch`` is the holder's
    fencing epoch, stamped into the payload so a successor (and the holder
    itself, on renewal) can tell *which* acquisition a record belongs to.

    A lock held by a live owner raises :class:`StoreLockError`; a stale
    one (dead same-host pid, or expired lease) is stolen through the
    marker-guarded path above, so concurrent openers racing for the same
    stale lock end with exactly one holder.  The per-worker campaign
    store, the service root, and the service lease all reuse this.
    """
    lock_path = os.path.join(directory, LOCK_NAME)
    now = clock() if clock is not None else time.time()
    payload = format_lock_payload(
        lock_host(), os.getpid(), epoch, None if ttl is None else now + ttl
    ).encode("ascii")
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno != errno.EEXIST:
                raise
            record = read_lock_record(lock_path)
            if record is not None and not _lock_is_stale(record):
                # A live owner — even this very process (a second store on
                # the same slice) — means two campaigns would clobber one
                # directory.  Refuse.
                raise StoreLockError(
                    directory, record.pid, owner_host=record.host
                )
            _steal_stale_lock(directory, lock_path)
            continue
        try:
            os.write(fd, payload)
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        return lock_path


def renew_pidfile_lock(directory, ttl, epoch=0, clock=None, fsync=True):
    """Atomically extend this owner's lease on ``directory``.

    Verifies the lock still names this (host, pid, epoch) before
    rewriting it with a fresh expiry; a lock that meanwhile names someone
    else — the lease expired and was stolen — raises
    :class:`StoreFencedError`, the signal for the fenced owner to stop
    writing.  The verify-then-replace pair is not atomic against a
    concurrent steal; that residual window is exactly why journal records
    are fence-stamped and resolved at scan time.
    """
    lock_path = os.path.join(directory, LOCK_NAME)
    record = read_lock_record(lock_path)
    if record is None or not record.names(lock_host(), os.getpid(), epoch):
        raise StoreFencedError(directory, record)
    now = clock() if clock is not None else time.time()
    atomic_write_bytes(
        lock_path,
        format_lock_payload(lock_host(), os.getpid(), epoch, now + ttl).encode(
            "ascii"
        ),
        fsync=fsync,
    )
    return lock_path


def release_pidfile_lock(directory, epoch=None, force=False):
    """Drop this owner's lock on ``directory`` (idempotent, best-effort).

    The unlink is ownership-checked: a process whose stale lock was
    stolen and re-acquired must not delete the *new* owner's lock, so the
    file is removed only when it still names this host+pid (and ``epoch``,
    when given).  ``force=True`` skips the check — administrative cleanup
    of a root nobody owns.
    """
    lock_path = os.path.join(directory, LOCK_NAME)
    if not force:
        record = read_lock_record(lock_path)
        if record is not None and not record.names(
            lock_host(), os.getpid(), epoch
        ):
            logger.warning(
                "%s: not releasing a lock now owned by %s", directory, record
            )
            return
    try:
        os.unlink(lock_path)
    except OSError:
        pass


def artifact_name(seq, digest, sig=None):
    """AFL-style artifact file name; the embedded hash makes it verifiable."""
    if sig is not None:
        return "id:%0*d,sig:%s,hash:%s" % (_ID_WIDTH, seq, sig, digest)
    return "id:%0*d,hash:%s" % (_ID_WIDTH, seq, digest)


def parse_artifact_name(name):
    """``(seq, sig_or_None, hash)`` from an artifact name, or None."""
    fields = {}
    order = []
    for part in name.split(","):
        key, colon, value = part.partition(":")
        if not colon:
            return None
        fields[key] = value
        order.append(key)
    if order[:1] != ["id"] or "hash" not in fields:
        return None
    try:
        seq = int(fields["id"])
    except ValueError:
        return None
    return seq, fields.get("sig"), fields["hash"]


class ScanReport:
    """Outcome of one tolerant directory scan."""

    __slots__ = ("kind", "survivors", "quarantined")

    def __init__(self, kind):
        self.kind = kind
        #: ``(seq, sig, digest, data)`` for every verified artifact, id order.
        self.survivors = []
        #: ``(original_path, reason)`` for every file moved to quarantine.
        self.quarantined = []

    def __repr__(self):
        return "ScanReport(%s: %d ok, %d quarantined)" % (
            self.kind,
            len(self.survivors),
            len(self.quarantined),
        )


class CampaignStore:
    """One worker's slice of a durable campaign workspace.

    ``root`` is the campaign output directory; ``worker`` names this
    instance's subdirectory.  ``meta`` (subject/config/run_seed/...) is
    recorded in the manifest and *verified* against a pre-existing manifest
    on reopen — resuming a ``gdk`` campaign onto a ``cflow`` store raises
    :class:`StoreMismatchError` instead of silently mixing corpora.

    ``lock=True`` (the default) takes an exclusive pidfile lock on the
    worker directory.  A lock held by a live process raises
    :class:`StoreLockError`; a lock left behind by a dead one (the killed
    campaign this store exists to survive) is logged and stolen.

    ``worker_index`` / ``incarnation`` key the fault-injection plan:
    ``torn-write@<worker_index>.<nth-write>`` tears the store's n-th
    committed artifact, ``corrupt-file`` flips bytes in it.
    """

    def __init__(
        self,
        root,
        worker=MAIN_WORKER,
        meta=None,
        lock=True,
        worker_index=0,
        incarnation=0,
        fsync=True,
        bus=None,
        lease_ttl=None,
    ):
        self.root = os.path.abspath(root)
        self.worker = worker
        self.worker_dir = os.path.join(self.root, worker)
        self.worker_index = int(worker_index)
        self.incarnation = int(incarnation)
        self.fsync = fsync
        self._bus = bus
        #: Lease seconds on the slice lock (None = classic no-lease lock).
        #: The incarnation doubles as the slice's fencing epoch: attempt N's
        #: lock names epoch N, so a stalled attempt N-1 whose lease expired
        #: and was stolen fails its next renewal with StoreFencedError.
        self.lease_ttl = lease_ttl
        self._locked = False
        self._write_no = 0  # committed artifact writes (fault-plan key)
        self._seen = {}  # content hash -> artifact kind already on disk
        self._seq = {QUEUE_DIR: 0, CRASH_DIR: 0, HANG_DIR: 0}
        self.quarantine_count = 0
        for sub in (QUEUE_DIR, CRASH_DIR, HANG_DIR, QUARANTINE_DIR):
            os.makedirs(os.path.join(self.worker_dir, sub), exist_ok=True)
        if lock:
            self._acquire_lock()
        meta = dict(meta or {})
        # Epoch-stamp the manifest: which host and which fencing epoch
        # (= incarnation) last owned this slice.
        meta.setdefault("host", lock_host())
        meta["fence"] = self.incarnation
        self.meta = self._load_or_init_manifest(meta)
        self._adopt_existing()

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Flush the manifest and release the lock (idempotent).

        Both steps are ownership-checked end to end: a store whose lease
        was stolen must neither clobber the successor's manifest nor
        delete its lock.
        """
        if self._locked:
            try:
                self._write_manifest()
            except StoreFencedError:
                logger.warning(
                    "%s: fenced at close; manifest left to the successor",
                    self.worker_dir,
                )
            release_pidfile_lock(self.worker_dir, epoch=self.incarnation)
            self._locked = False

    def _acquire_lock(self):
        acquire_pidfile_lock(
            self.worker_dir,
            fsync=self.fsync,
            ttl=self.lease_ttl,
            epoch=self.incarnation,
        )
        self._locked = True

    def renew_lease(self):
        """Extend the slice lease (no-op for classic no-lease locks).

        Raises :class:`StoreFencedError` when the lock no longer names
        this worker — its lease expired and a successor took the slice.
        """
        if self._locked and self.lease_ttl is not None:
            renew_pidfile_lock(
                self.worker_dir,
                self.lease_ttl,
                epoch=self.incarnation,
                fsync=self.fsync,
            )

    def check_fence(self):
        """Raise :class:`StoreFencedError` if this store lost its lock."""
        if not self._locked:
            return
        record = read_lock_record(os.path.join(self.worker_dir, LOCK_NAME))
        if record is None or not record.names(
            lock_host(), os.getpid(), self.incarnation if self.lease_ttl else None
        ):
            raise StoreFencedError(self.worker_dir, record)

    # -- manifest / stats ------------------------------------------------------

    def _manifest_path(self):
        return os.path.join(self.worker_dir, MANIFEST_NAME)

    def _load_or_init_manifest(self, meta):
        path = self._manifest_path()
        existing = None
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                # A torn manifest is quarantined like any other torn file;
                # identity is then re-seeded from ``meta``.
                self._quarantine(path, "unreadable manifest")
                existing = None
        if existing is not None:
            if int(existing.get("version", -1)) != MANIFEST_VERSION:
                raise StoreMismatchError(
                    path, "version", MANIFEST_VERSION, existing.get("version")
                )
            for field in ("subject", "config", "run_seed"):
                want = meta.get(field)
                have = existing.get(field)
                if want is not None and have is not None and want != have:
                    raise StoreMismatchError(path, field, want, have)
            merged = dict(existing)
            merged.update({k: v for k, v in meta.items() if v is not None})
            return merged
        manifest = {"version": MANIFEST_VERSION, "worker": self.worker, "rounds": 0}
        manifest.update(meta)
        self.meta = manifest
        self._write_manifest()
        return manifest

    def _write_manifest(self):
        if self.lease_ttl is not None and self._locked:
            self.check_fence()
        data = json.dumps(self.meta, indent=2, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self._manifest_path(), data, fsync=self.fsync)

    def record_round(self, round_no):
        """Watermark the last fully-synced round (recovery replays after it)."""
        self.meta["rounds"] = int(round_no)
        self._write_manifest()

    def rounds(self):
        return int(self.meta.get("rounds", 0))

    def write_stats(self, stats):
        """Write the AFL-style ``fuzzer_stats`` summary atomically."""
        lines = ["%-18s: %s" % (key, stats[key]) for key in sorted(stats)]
        atomic_write_bytes(
            os.path.join(self.worker_dir, STATS_NAME),
            ("\n".join(lines) + "\n").encode("utf-8"),
            fsync=self.fsync,
        )

    def read_stats(self):
        """Parse ``fuzzer_stats`` back into a dict (empty if absent/torn)."""
        path = os.path.join(self.worker_dir, STATS_NAME)
        stats = {}
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    key, colon, value = line.partition(":")
                    if colon:
                        stats[key.strip()] = value.strip()
        except OSError:
            pass
        return stats

    # -- artifact writes -------------------------------------------------------

    def _dir(self, kind):
        return os.path.join(self.worker_dir, kind)

    def _commit(self, kind, data, sig=None):
        """Dedupe, atomically write, and fault-check one artifact."""
        if self.lease_ttl is not None:
            # Leased slices refuse late writes outright: a fenced worker
            # must not grow a successor's directory.
            self.check_fence()
        digest = content_hash(data)
        if self._seen.get((kind, digest)) is not None:
            return None
        seq = self._seq[kind]
        self._seq[kind] = seq + 1
        path = os.path.join(self._dir(kind), artifact_name(seq, digest, sig))
        atomic_write_bytes(path, bytes(data), fsync=self.fsync)
        self._seen[(kind, digest)] = path
        self._write_no += 1
        self._fire_store_fault(path)
        return path

    def _fire_store_fault(self, path):
        from repro.fuzzer import faultinject

        plan = faultinject.active_plan()
        if not plan:
            return
        fault = plan.match(
            "store", self.worker_index, self._write_no, self.incarnation
        )
        if fault is not None:
            faultinject.fire_store_fault(fault, path)

    def save_queue_entry(self, entry):
        """Stream one retained queue entry to ``queue/`` (content-deduped)."""
        return self._commit(QUEUE_DIR, entry.data)

    def save_crash(self, record):
        """Stream one deduplicated crash with its triage report sidecars.

        The input lands in ``crashes/`` under its stack-hash signature; the
        human-readable ASan-style report and a machine-readable triage JSON
        sit next to it, so a crash directory is actionable without re-running
        anything.
        """
        path = self._commit(CRASH_DIR, record.data, sig=record.hash5)
        if path is None:
            return None
        trap = record.trap
        report = trap.report() + "\n"
        atomic_write_bytes(
            path + ".report.txt", report.encode("utf-8"), fsync=self.fsync
        )
        triage = {
            "bug": list(trap.bug_id()),
            "kind": trap.kind,
            "detail": trap.detail,
            "stack": [[frame.function, frame.line] for frame in trap.stack],
            "stack_hash": record.hash5,
            "found_at": record.found_at,
            "afl_unique": bool(record.afl_unique),
        }
        atomic_write_bytes(
            path + ".triage.json",
            json.dumps(triage, indent=2, sort_keys=True).encode("utf-8"),
            fsync=self.fsync,
        )
        return path

    def save_hang(self, data):
        """Stream one hanging input to ``hangs/`` (content-deduped)."""
        return self._commit(HANG_DIR, data)

    # -- tolerant scanning / recovery ------------------------------------------

    def _adopt_existing(self):
        """Seed sequence counters and dedupe sets from what is on disk.

        Reopening a store (resume, or a restarted worker) must continue the
        id sequence and must not re-write artifacts that already exist.
        Quarantining here is deferred to :meth:`scan` — adoption is cheap
        and runs on every open.
        """
        for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR):
            top = 0
            try:
                names = os.listdir(self._dir(kind))
            except OSError:
                names = []
            for name in names:
                parsed = parse_artifact_name(name.split(".")[0])
                if parsed is None:
                    continue
                seq, _, digest = parsed
                if "." in name:
                    continue  # sidecar (.report.txt / .triage.json / .tmp)
                top = max(top, seq + 1)
                self._seen[(kind, digest)] = os.path.join(self._dir(kind), name)
            self._seq[kind] = max(self._seq[kind], top)

    def _quarantine(self, path, reason):
        """Move one damaged file into ``quarantine/`` (never raises)."""
        qdir = os.path.join(self.worker_dir, QUARANTINE_DIR)
        base = os.path.basename(path)
        target = os.path.join(qdir, base)
        bump = 0
        while os.path.exists(target):
            bump += 1
            target = os.path.join(qdir, "%s.%d" % (base, bump))
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, target)
        except OSError as exc:
            logger.warning("%s: could not quarantine (%s); ignoring", path, exc)
            return
        self.quarantine_count += 1
        logger.warning("%s: quarantined (%s)", path, reason)

    def scan(self, kind=QUEUE_DIR):
        """Verify one artifact directory, quarantining everything damaged.

        Tolerant by contract: a torn write, a stray tmp file, a misnamed
        file, or a content-hash mismatch moves the file to ``quarantine/``
        and the scan continues.  Returns a :class:`ScanReport` whose
        survivors are ``(seq, sig, digest, data)`` in id order.  Publishes a
        ``store`` telemetry event with the counts.
        """
        report = ScanReport(kind)
        directory = self._dir(kind)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if ".tmp." in name or name.endswith(".tmp"):
                self._quarantine(path, "leftover temp file (torn write)")
                report.quarantined.append((path, "torn-write"))
                continue
            if name.endswith(".report.txt") or name.endswith(".triage.json"):
                continue  # crash sidecars; verified with their artifact
            parsed = parse_artifact_name(name)
            if parsed is None:
                self._quarantine(path, "unparseable artifact name")
                report.quarantined.append((path, "bad-name"))
                continue
            seq, sig, digest = parsed
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                self._quarantine(path, "unreadable (%s)" % exc)
                report.quarantined.append((path, "unreadable"))
                continue
            if not data:
                self._quarantine(path, "empty file (torn write)")
                report.quarantined.append((path, "empty"))
                continue
            if content_hash(data) != digest:
                self._quarantine(path, "content hash mismatch (corrupt)")
                report.quarantined.append((path, "bad-hash"))
                continue
            report.survivors.append((seq, sig, digest, data))
        report.survivors.sort(key=lambda item: item[0])
        self._publish_scan(report)
        return report

    def scan_all(self):
        """Scan queue, crashes, and hangs; returns ``{kind: ScanReport}``."""
        return {kind: self.scan(kind) for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR)}

    def _publish_scan(self, report):
        try:
            from repro.telemetry.bus import StoreEvent, get_bus

            bus = self._bus if self._bus is not None else get_bus()
            bus.publish(
                StoreEvent(
                    "scan",
                    self.worker,
                    kind=report.kind,
                    entries=len(report.survivors),
                    quarantined=len(report.quarantined),
                )
            )
        except Exception:  # telemetry must never take the store down
            logger.debug("store scan event publish failed", exc_info=True)

    def replay_into(self, engine):
        """Rebuild engine state from the store via ``import_input``.

        Every surviving input — queue first, then crashes, then hangs, each
        in id order — is re-executed under the engine's own instrumentation
        and re-classified deterministically: novel inputs are queued,
        crashing ones re-enter the crash log, hanging ones the hang log.
        Damaged files are already in ``quarantine/`` by the time this runs.
        Returns ``{kind: survivor_count}``.
        """
        reports = self.scan_all()
        counts = {}
        for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR):
            report = reports[kind]
            counts[kind] = len(report.survivors)
            for _seq, _sig, _digest, data in report.survivors:
                engine.import_input(data)
        logger.info(
            "%s: resumed %d queue / %d crash / %d hang inputs (%d quarantined)",
            self.worker_dir,
            counts[QUEUE_DIR],
            counts[CRASH_DIR],
            counts[HANG_DIR],
            self.quarantine_count,
        )
        return counts

    def has_artifacts(self):
        """Whether any artifact survived a previous run (cheap check)."""
        return bool(self._seen)

    def queue_hashes(self):
        """Content hashes of every queue entry this store holds."""
        return {digest for (kind, digest) in self._seen if kind == QUEUE_DIR}

    # -- cross-instance sync ---------------------------------------------------

    def sibling_workers(self):
        """Other workers' directory names under the shared root."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        siblings = []
        for name in names:
            if name == self.worker:
                continue
            if os.path.isdir(os.path.join(self.root, name, QUEUE_DIR)):
                siblings.append(name)
        return siblings

    def foreign_entries(self, seen_hashes):
        """AFL's foreign-queue scan: new inputs from sibling workers' queues.

        Reads every sibling's ``queue/`` directly (no locking — artifacts
        are immutable once renamed into place), skipping content hashes in
        ``seen_hashes``.  Damaged foreign files are *skipped*, not
        quarantined: only the owning worker evicts its own files.  Yields
        ``(digest, data)`` in (worker, id) order — deterministic for a fixed
        worker set.
        """
        for sibling in self.sibling_workers():
            directory = os.path.join(self.root, sibling, QUEUE_DIR)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            entries = []
            for name in names:
                parsed = parse_artifact_name(name)
                if parsed is None:
                    continue
                seq, _sig, digest = parsed
                if digest in seen_hashes:
                    continue
                entries.append((seq, digest, os.path.join(directory, name)))
            for seq, digest, path in sorted(entries):
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                if not data or content_hash(data) != digest:
                    continue  # torn or corrupt foreign file: owner's problem
                yield digest, data

    # -- engine bookkeeping ----------------------------------------------------

    def finalize(self, engine, extra=None):
        """Write the final ``fuzzer_stats`` + manifest for one engine run."""
        stats = {
            "execs_done": engine.execs,
            "paths_total": len(engine.queue.entries),
            "cycles_done": engine.cycle,
            "crashes_total": engine.crash_count,
            "unique_crashes": len(engine.unique_crashes),
            "unique_hangs": len(engine.unique_hangs),
            "hangs_total": engine.hangs,
            "coverage": engine.virgin.coverage_count(),
            "ticks": engine.clock.ticks if engine.clock else 0,
            "quarantined": self.quarantine_count,
            "worker": self.worker,
        }
        stats.update(extra or {})
        self.write_stats(stats)
        self._write_manifest()
        _fsync_dir(self.worker_dir)
        return stats


def worker_name(index):
    """Directory name of instance ``index`` (``w0``, ``w1``, ...)."""
    return "w%d" % index


def campaign_queue_hashes(root):
    """Distinct queue-entry content hashes across every worker slice.

    The directory-synced analogue of the pipe-merged shared-corpus size:
    artifacts are content-addressed, so the union of embedded hashes *is*
    the deduplicated campaign corpus.
    """
    hashes = set()
    try:
        workers = os.listdir(root)
    except OSError:
        return hashes
    for worker in workers:
        directory = os.path.join(root, worker, QUEUE_DIR)
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            parsed = parse_artifact_name(name)
            if parsed is not None:
                hashes.add(parsed[2])
    return hashes


def attach_store(engine, store):
    """Attach a store to an engine and backfill artifacts found pre-attach."""
    engine.store = store
    for entry in engine.queue.entries:
        store.save_queue_entry(entry)
    for record in engine.unique_crashes.values():
        store.save_crash(record)
    for record in engine.unique_hangs.values():
        store.save_hang(record.data)
    return engine
