"""The durable campaign workspace (AFL-style output directory).

Long campaigns survive machine trouble because the *filesystem*, not the
fuzzer process, is the source of truth: AFL's ``out/<instance>/queue/``,
``crashes/`` and ``hangs/`` directories are what secondary instances sync
through and what a killed campaign resumes from.  This module is that layout
for the reproduction:

::

    out/
      <worker>/                 "main" (single instance) or "w0", "w1", ...
        LOCK                    pidfile; two campaigns cannot share a worker dir
        manifest.json           versioned campaign identity + round watermark
        fuzzer_stats            AFL-style ``key : value`` progress summary
        queue/                  id:NNNNNN,hash:<sha1> retained inputs
        crashes/                id:NNNNNN,sig:<hash5>,hash:<sha1> + triage sidecars
        hangs/                  id:NNNNNN,hash:<sha1> hanging inputs
        quarantine/             torn / hash-mismatched files the scanner evicted

Every write is atomic (tmp + ``fsync`` + ``os.replace``), so a file either
exists whole or not at all; a crash mid-write leaves at worst a stale
``*.tmp`` that the next scan quarantines.  Artifact names embed the content
hash, which makes the store content-addressed (cross-instance dedup needs no
index) and *self-verifying*: the tolerant scanner (:meth:`CampaignStore.scan`)
re-hashes every file, moves anything torn, truncated, misnamed, or
bit-rotted into ``quarantine/`` — counted, logged, published to telemetry,
never fatal — and hands the survivors back for deterministic re-execution
through :meth:`~repro.fuzzer.engine.FuzzEngine.import_input`
(:meth:`CampaignStore.replay_into`).

The store is an *observer* of the engine, like telemetry: it charges no
virtual clock, draws no RNG, and is excluded from checkpoints; a campaign
with a store attached is field-for-field equal to one without.

Fault injection (:mod:`repro.fuzzer.faultinject`) targets store paths with
``torn-write`` / ``corrupt-file`` actions keyed on the store's write
counter, so the quarantine-and-continue path is provable in CI rather than
hoped for.
"""

import errno
import hashlib
import json
import logging
import os

logger = logging.getLogger("repro.fuzzer.store")

#: Manifest format version; bumped on incompatible layout changes.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATS_NAME = "fuzzer_stats"
LOCK_NAME = "LOCK"
QUEUE_DIR = "queue"
CRASH_DIR = "crashes"
HANG_DIR = "hangs"
QUARANTINE_DIR = "quarantine"

#: Name of the single-instance worker slice (AFL++ calls it "default").
MAIN_WORKER = "main"

_ID_WIDTH = 6


class StoreError(RuntimeError):
    """Base class: the campaign workspace cannot be used."""


class StoreLockError(StoreError):
    """Another live campaign owns this worker directory."""

    def __init__(self, path, owner_pid):
        self.path = path
        self.owner_pid = owner_pid
        super().__init__(
            "%s is locked by live campaign pid %d; refusing to share an "
            "output directory between two campaigns" % (path, owner_pid)
        )


class StoreMismatchError(StoreError):
    """The directory's manifest names a different campaign."""

    def __init__(self, path, field, expected, found):
        self.path = path
        self.field = field
        self.expected = expected
        self.found = found
        super().__init__(
            "%s was written by a different campaign: manifest %s is %r, "
            "this campaign is %r (use a fresh --output directory)"
            % (path, field, found, expected)
        )


def content_hash(data):
    """Content identity of one input (same digest the corpus sync uses)."""
    return hashlib.sha1(bytes(data)).hexdigest()


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically: tmp + flush + fsync + rename.

    A crash at any point leaves either the old file (or nothing) at ``path``
    plus at worst a ``*.tmp.<pid>`` the scanner later quarantines — never a
    half-written artifact under the real name.
    """
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def _fsync_dir(path):
    """Best-effort directory fsync so renames survive power loss too."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def read_pidfile_owner(lock_path):
    """The pid recorded in a pidfile lock, or None if unreadable/missing."""
    try:
        with open(lock_path, "rb") as handle:
            return int(handle.read().split()[0])
    except (OSError, ValueError, IndexError):
        return None


def _steal_stale_lock(directory, lock_path):
    """Remove a stale (dead-owner) pidfile lock, marker-guarded.

    Two concurrent openers can both observe the same stale lock; naive
    ``unlink`` lets the slower one remove the *winner's* fresh lock, and
    both end up holding the directory.  The steal is therefore serialized
    through an ``O_EXCL`` marker file: only the marker holder may unlink,
    and it re-reads the owner *under the marker* so a lock re-taken by a
    live process in the meantime survives.  Returns to the caller's
    acquire loop either way; raises :class:`StoreLockError` when the lock
    (or the marker) turns out to be held by a live process after all.
    """
    marker = lock_path + ".steal"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno != errno.EEXIST:
            raise
        # Another opener is mid-steal.  A live marker holder owns the right
        # to the lock — that is contention, not staleness.  A dead one left
        # its marker behind; clear it and retry.
        marker_owner = read_pidfile_owner(marker)
        if marker_owner is not None and _pid_alive(marker_owner):
            raise StoreLockError(directory, marker_owner)
        try:
            os.unlink(marker)
        except OSError:
            pass
        return
    try:
        os.write(fd, ("%d\n" % os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    try:
        owner = read_pidfile_owner(lock_path)
        if owner is None or not _pid_alive(owner):
            logger.warning(
                "%s: stealing stale lock left by dead pid %s", directory, owner
            )
            try:
                os.unlink(lock_path)
            except OSError:
                pass
    finally:
        try:
            os.unlink(marker)
        except OSError:
            pass


def acquire_pidfile_lock(directory, fsync=True):
    """Take the exclusive pidfile lock on ``directory``; returns its path.

    A lock held by a live process raises :class:`StoreLockError`; a lock
    left behind by a dead one is stolen through the marker-guarded path
    above, so two concurrent openers racing for the same stale lock end
    with exactly one holder.  Both the per-worker campaign store and the
    service root reuse this.
    """
    lock_path = os.path.join(directory, LOCK_NAME)
    payload = ("%d\n" % os.getpid()).encode("ascii")
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno != errno.EEXIST:
                raise
            owner = read_pidfile_owner(lock_path)
            if owner is not None and _pid_alive(owner):
                # A live owner — even this very process (a second store on
                # the same slice) — means two campaigns would clobber one
                # directory.  Refuse.
                raise StoreLockError(directory, owner)
            _steal_stale_lock(directory, lock_path)
            continue
        try:
            os.write(fd, payload)
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        return lock_path


def release_pidfile_lock(directory):
    """Drop the pidfile lock on ``directory`` (idempotent, best-effort)."""
    try:
        os.unlink(os.path.join(directory, LOCK_NAME))
    except OSError:
        pass


def artifact_name(seq, digest, sig=None):
    """AFL-style artifact file name; the embedded hash makes it verifiable."""
    if sig is not None:
        return "id:%0*d,sig:%s,hash:%s" % (_ID_WIDTH, seq, sig, digest)
    return "id:%0*d,hash:%s" % (_ID_WIDTH, seq, digest)


def parse_artifact_name(name):
    """``(seq, sig_or_None, hash)`` from an artifact name, or None."""
    fields = {}
    order = []
    for part in name.split(","):
        key, colon, value = part.partition(":")
        if not colon:
            return None
        fields[key] = value
        order.append(key)
    if order[:1] != ["id"] or "hash" not in fields:
        return None
    try:
        seq = int(fields["id"])
    except ValueError:
        return None
    return seq, fields.get("sig"), fields["hash"]


class ScanReport:
    """Outcome of one tolerant directory scan."""

    __slots__ = ("kind", "survivors", "quarantined")

    def __init__(self, kind):
        self.kind = kind
        #: ``(seq, sig, digest, data)`` for every verified artifact, id order.
        self.survivors = []
        #: ``(original_path, reason)`` for every file moved to quarantine.
        self.quarantined = []

    def __repr__(self):
        return "ScanReport(%s: %d ok, %d quarantined)" % (
            self.kind,
            len(self.survivors),
            len(self.quarantined),
        )


class CampaignStore:
    """One worker's slice of a durable campaign workspace.

    ``root`` is the campaign output directory; ``worker`` names this
    instance's subdirectory.  ``meta`` (subject/config/run_seed/...) is
    recorded in the manifest and *verified* against a pre-existing manifest
    on reopen — resuming a ``gdk`` campaign onto a ``cflow`` store raises
    :class:`StoreMismatchError` instead of silently mixing corpora.

    ``lock=True`` (the default) takes an exclusive pidfile lock on the
    worker directory.  A lock held by a live process raises
    :class:`StoreLockError`; a lock left behind by a dead one (the killed
    campaign this store exists to survive) is logged and stolen.

    ``worker_index`` / ``incarnation`` key the fault-injection plan:
    ``torn-write@<worker_index>.<nth-write>`` tears the store's n-th
    committed artifact, ``corrupt-file`` flips bytes in it.
    """

    def __init__(
        self,
        root,
        worker=MAIN_WORKER,
        meta=None,
        lock=True,
        worker_index=0,
        incarnation=0,
        fsync=True,
        bus=None,
    ):
        self.root = os.path.abspath(root)
        self.worker = worker
        self.worker_dir = os.path.join(self.root, worker)
        self.worker_index = int(worker_index)
        self.incarnation = int(incarnation)
        self.fsync = fsync
        self._bus = bus
        self._locked = False
        self._write_no = 0  # committed artifact writes (fault-plan key)
        self._seen = {}  # content hash -> artifact kind already on disk
        self._seq = {QUEUE_DIR: 0, CRASH_DIR: 0, HANG_DIR: 0}
        self.quarantine_count = 0
        for sub in (QUEUE_DIR, CRASH_DIR, HANG_DIR, QUARANTINE_DIR):
            os.makedirs(os.path.join(self.worker_dir, sub), exist_ok=True)
        if lock:
            self._acquire_lock()
        self.meta = self._load_or_init_manifest(dict(meta or {}))
        self._adopt_existing()

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Flush the manifest and release the lock (idempotent)."""
        if self._locked:
            self._write_manifest()
            release_pidfile_lock(self.worker_dir)
            self._locked = False

    def _acquire_lock(self):
        acquire_pidfile_lock(self.worker_dir, fsync=self.fsync)
        self._locked = True

    # -- manifest / stats ------------------------------------------------------

    def _manifest_path(self):
        return os.path.join(self.worker_dir, MANIFEST_NAME)

    def _load_or_init_manifest(self, meta):
        path = self._manifest_path()
        existing = None
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                # A torn manifest is quarantined like any other torn file;
                # identity is then re-seeded from ``meta``.
                self._quarantine(path, "unreadable manifest")
                existing = None
        if existing is not None:
            if int(existing.get("version", -1)) != MANIFEST_VERSION:
                raise StoreMismatchError(
                    path, "version", MANIFEST_VERSION, existing.get("version")
                )
            for field in ("subject", "config", "run_seed"):
                want = meta.get(field)
                have = existing.get(field)
                if want is not None and have is not None and want != have:
                    raise StoreMismatchError(path, field, want, have)
            merged = dict(existing)
            merged.update({k: v for k, v in meta.items() if v is not None})
            return merged
        manifest = {"version": MANIFEST_VERSION, "worker": self.worker, "rounds": 0}
        manifest.update(meta)
        self.meta = manifest
        self._write_manifest()
        return manifest

    def _write_manifest(self):
        data = json.dumps(self.meta, indent=2, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self._manifest_path(), data, fsync=self.fsync)

    def record_round(self, round_no):
        """Watermark the last fully-synced round (recovery replays after it)."""
        self.meta["rounds"] = int(round_no)
        self._write_manifest()

    def rounds(self):
        return int(self.meta.get("rounds", 0))

    def write_stats(self, stats):
        """Write the AFL-style ``fuzzer_stats`` summary atomically."""
        lines = ["%-18s: %s" % (key, stats[key]) for key in sorted(stats)]
        atomic_write_bytes(
            os.path.join(self.worker_dir, STATS_NAME),
            ("\n".join(lines) + "\n").encode("utf-8"),
            fsync=self.fsync,
        )

    def read_stats(self):
        """Parse ``fuzzer_stats`` back into a dict (empty if absent/torn)."""
        path = os.path.join(self.worker_dir, STATS_NAME)
        stats = {}
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    key, colon, value = line.partition(":")
                    if colon:
                        stats[key.strip()] = value.strip()
        except OSError:
            pass
        return stats

    # -- artifact writes -------------------------------------------------------

    def _dir(self, kind):
        return os.path.join(self.worker_dir, kind)

    def _commit(self, kind, data, sig=None):
        """Dedupe, atomically write, and fault-check one artifact."""
        digest = content_hash(data)
        if self._seen.get((kind, digest)) is not None:
            return None
        seq = self._seq[kind]
        self._seq[kind] = seq + 1
        path = os.path.join(self._dir(kind), artifact_name(seq, digest, sig))
        atomic_write_bytes(path, bytes(data), fsync=self.fsync)
        self._seen[(kind, digest)] = path
        self._write_no += 1
        self._fire_store_fault(path)
        return path

    def _fire_store_fault(self, path):
        from repro.fuzzer import faultinject

        plan = faultinject.active_plan()
        if not plan:
            return
        fault = plan.match(
            "store", self.worker_index, self._write_no, self.incarnation
        )
        if fault is not None:
            faultinject.fire_store_fault(fault, path)

    def save_queue_entry(self, entry):
        """Stream one retained queue entry to ``queue/`` (content-deduped)."""
        return self._commit(QUEUE_DIR, entry.data)

    def save_crash(self, record):
        """Stream one deduplicated crash with its triage report sidecars.

        The input lands in ``crashes/`` under its stack-hash signature; the
        human-readable ASan-style report and a machine-readable triage JSON
        sit next to it, so a crash directory is actionable without re-running
        anything.
        """
        path = self._commit(CRASH_DIR, record.data, sig=record.hash5)
        if path is None:
            return None
        trap = record.trap
        report = trap.report() + "\n"
        atomic_write_bytes(
            path + ".report.txt", report.encode("utf-8"), fsync=self.fsync
        )
        triage = {
            "bug": list(trap.bug_id()),
            "kind": trap.kind,
            "detail": trap.detail,
            "stack": [[frame.function, frame.line] for frame in trap.stack],
            "stack_hash": record.hash5,
            "found_at": record.found_at,
            "afl_unique": bool(record.afl_unique),
        }
        atomic_write_bytes(
            path + ".triage.json",
            json.dumps(triage, indent=2, sort_keys=True).encode("utf-8"),
            fsync=self.fsync,
        )
        return path

    def save_hang(self, data):
        """Stream one hanging input to ``hangs/`` (content-deduped)."""
        return self._commit(HANG_DIR, data)

    # -- tolerant scanning / recovery ------------------------------------------

    def _adopt_existing(self):
        """Seed sequence counters and dedupe sets from what is on disk.

        Reopening a store (resume, or a restarted worker) must continue the
        id sequence and must not re-write artifacts that already exist.
        Quarantining here is deferred to :meth:`scan` — adoption is cheap
        and runs on every open.
        """
        for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR):
            top = 0
            try:
                names = os.listdir(self._dir(kind))
            except OSError:
                names = []
            for name in names:
                parsed = parse_artifact_name(name.split(".")[0])
                if parsed is None:
                    continue
                seq, _, digest = parsed
                if "." in name:
                    continue  # sidecar (.report.txt / .triage.json / .tmp)
                top = max(top, seq + 1)
                self._seen[(kind, digest)] = os.path.join(self._dir(kind), name)
            self._seq[kind] = max(self._seq[kind], top)

    def _quarantine(self, path, reason):
        """Move one damaged file into ``quarantine/`` (never raises)."""
        qdir = os.path.join(self.worker_dir, QUARANTINE_DIR)
        base = os.path.basename(path)
        target = os.path.join(qdir, base)
        bump = 0
        while os.path.exists(target):
            bump += 1
            target = os.path.join(qdir, "%s.%d" % (base, bump))
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, target)
        except OSError as exc:
            logger.warning("%s: could not quarantine (%s); ignoring", path, exc)
            return
        self.quarantine_count += 1
        logger.warning("%s: quarantined (%s)", path, reason)

    def scan(self, kind=QUEUE_DIR):
        """Verify one artifact directory, quarantining everything damaged.

        Tolerant by contract: a torn write, a stray tmp file, a misnamed
        file, or a content-hash mismatch moves the file to ``quarantine/``
        and the scan continues.  Returns a :class:`ScanReport` whose
        survivors are ``(seq, sig, digest, data)`` in id order.  Publishes a
        ``store`` telemetry event with the counts.
        """
        report = ScanReport(kind)
        directory = self._dir(kind)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if ".tmp." in name or name.endswith(".tmp"):
                self._quarantine(path, "leftover temp file (torn write)")
                report.quarantined.append((path, "torn-write"))
                continue
            if name.endswith(".report.txt") or name.endswith(".triage.json"):
                continue  # crash sidecars; verified with their artifact
            parsed = parse_artifact_name(name)
            if parsed is None:
                self._quarantine(path, "unparseable artifact name")
                report.quarantined.append((path, "bad-name"))
                continue
            seq, sig, digest = parsed
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                self._quarantine(path, "unreadable (%s)" % exc)
                report.quarantined.append((path, "unreadable"))
                continue
            if not data:
                self._quarantine(path, "empty file (torn write)")
                report.quarantined.append((path, "empty"))
                continue
            if content_hash(data) != digest:
                self._quarantine(path, "content hash mismatch (corrupt)")
                report.quarantined.append((path, "bad-hash"))
                continue
            report.survivors.append((seq, sig, digest, data))
        report.survivors.sort(key=lambda item: item[0])
        self._publish_scan(report)
        return report

    def scan_all(self):
        """Scan queue, crashes, and hangs; returns ``{kind: ScanReport}``."""
        return {kind: self.scan(kind) for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR)}

    def _publish_scan(self, report):
        try:
            from repro.telemetry.bus import StoreEvent, get_bus

            bus = self._bus if self._bus is not None else get_bus()
            bus.publish(
                StoreEvent(
                    "scan",
                    self.worker,
                    kind=report.kind,
                    entries=len(report.survivors),
                    quarantined=len(report.quarantined),
                )
            )
        except Exception:  # telemetry must never take the store down
            logger.debug("store scan event publish failed", exc_info=True)

    def replay_into(self, engine):
        """Rebuild engine state from the store via ``import_input``.

        Every surviving input — queue first, then crashes, then hangs, each
        in id order — is re-executed under the engine's own instrumentation
        and re-classified deterministically: novel inputs are queued,
        crashing ones re-enter the crash log, hanging ones the hang log.
        Damaged files are already in ``quarantine/`` by the time this runs.
        Returns ``{kind: survivor_count}``.
        """
        reports = self.scan_all()
        counts = {}
        for kind in (QUEUE_DIR, CRASH_DIR, HANG_DIR):
            report = reports[kind]
            counts[kind] = len(report.survivors)
            for _seq, _sig, _digest, data in report.survivors:
                engine.import_input(data)
        logger.info(
            "%s: resumed %d queue / %d crash / %d hang inputs (%d quarantined)",
            self.worker_dir,
            counts[QUEUE_DIR],
            counts[CRASH_DIR],
            counts[HANG_DIR],
            self.quarantine_count,
        )
        return counts

    def has_artifacts(self):
        """Whether any artifact survived a previous run (cheap check)."""
        return bool(self._seen)

    def queue_hashes(self):
        """Content hashes of every queue entry this store holds."""
        return {digest for (kind, digest) in self._seen if kind == QUEUE_DIR}

    # -- cross-instance sync ---------------------------------------------------

    def sibling_workers(self):
        """Other workers' directory names under the shared root."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        siblings = []
        for name in names:
            if name == self.worker:
                continue
            if os.path.isdir(os.path.join(self.root, name, QUEUE_DIR)):
                siblings.append(name)
        return siblings

    def foreign_entries(self, seen_hashes):
        """AFL's foreign-queue scan: new inputs from sibling workers' queues.

        Reads every sibling's ``queue/`` directly (no locking — artifacts
        are immutable once renamed into place), skipping content hashes in
        ``seen_hashes``.  Damaged foreign files are *skipped*, not
        quarantined: only the owning worker evicts its own files.  Yields
        ``(digest, data)`` in (worker, id) order — deterministic for a fixed
        worker set.
        """
        for sibling in self.sibling_workers():
            directory = os.path.join(self.root, sibling, QUEUE_DIR)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            entries = []
            for name in names:
                parsed = parse_artifact_name(name)
                if parsed is None:
                    continue
                seq, _sig, digest = parsed
                if digest in seen_hashes:
                    continue
                entries.append((seq, digest, os.path.join(directory, name)))
            for seq, digest, path in sorted(entries):
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                if not data or content_hash(data) != digest:
                    continue  # torn or corrupt foreign file: owner's problem
                yield digest, data

    # -- engine bookkeeping ----------------------------------------------------

    def finalize(self, engine, extra=None):
        """Write the final ``fuzzer_stats`` + manifest for one engine run."""
        stats = {
            "execs_done": engine.execs,
            "paths_total": len(engine.queue.entries),
            "cycles_done": engine.cycle,
            "crashes_total": engine.crash_count,
            "unique_crashes": len(engine.unique_crashes),
            "unique_hangs": len(engine.unique_hangs),
            "hangs_total": engine.hangs,
            "coverage": engine.virgin.coverage_count(),
            "ticks": engine.clock.ticks if engine.clock else 0,
            "quarantined": self.quarantine_count,
            "worker": self.worker,
        }
        stats.update(extra or {})
        self.write_stats(stats)
        self._write_manifest()
        _fsync_dir(self.worker_dir)
        return stats


def worker_name(index):
    """Directory name of instance ``index`` (``w0``, ``w1``, ...)."""
    return "w%d" % index


def campaign_queue_hashes(root):
    """Distinct queue-entry content hashes across every worker slice.

    The directory-synced analogue of the pipe-merged shared-corpus size:
    artifacts are content-addressed, so the union of embedded hashes *is*
    the deduplicated campaign corpus.
    """
    hashes = set()
    try:
        workers = os.listdir(root)
    except OSError:
        return hashes
    for worker in workers:
        directory = os.path.join(root, worker, QUEUE_DIR)
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            parsed = parse_artifact_name(name)
            if parsed is not None:
                hashes.add(parsed[2])
    return hashes


def attach_store(engine, store):
    """Attach a store to an engine and backfill artifacts found pre-attach."""
    engine.store = store
    for entry in engine.queue.entries:
        store.save_queue_entry(entry)
    for record in engine.unique_crashes.values():
        store.save_crash(record)
    for record in engine.unique_hangs.values():
        store.save_hang(record.data)
    return engine
