"""Virtual time.

Real fuzzing campaigns are budgeted in wall-clock hours; this reproduction
runs on a deterministic *virtual clock* whose ticks are proportional to the
work performed: interpreted instructions, probe actions, and fixed per-
execution overheads (process setup, novelty checking, queue maintenance).
Relative throughput effects — the heart of the paper's queue-explosion
story — are preserved while campaigns stay laptop-scale and reproducible.

The calibration constant :data:`TICKS_PER_HOUR` maps "paper hours" onto
ticks; experiment configs scale it via the ``REPRO_SCALE`` environment knob.
"""

# One "campaign hour" of the paper corresponds to this many virtual ticks at
# scale 1.0.  At roughly 150-400 ticks per execution this yields a few
# thousand executions per hour — enough for the fuzzing dynamics to play out.
TICKS_PER_HOUR = 400_000

# Fixed per-execution overhead: fork-server round trip, harness dispatch,
# coverage novelty checking (AFL's run_target + save_if_interesting
# envelope).  For fast targets this dominates the execution itself, exactly
# as process setup does for real fuzzers.
EXEC_OVERHEAD = 250


class VirtualClock:
    """Monotonic tick counter with a budget."""

    __slots__ = ("ticks", "budget")

    def __init__(self, budget):
        self.ticks = 0
        self.budget = budget

    def charge(self, amount):
        self.ticks += amount

    def expired(self):
        return self.ticks >= self.budget

    def remaining(self):
        return max(0, self.budget - self.ticks)

    def snapshot(self):
        """Picklable state for campaign checkpoints."""
        return (self.ticks, self.budget)

    @classmethod
    def from_snapshot(cls, snap):
        ticks, budget = snap
        clock = cls(budget)
        clock.ticks = ticks
        return clock

    def __repr__(self):
        return "VirtualClock(%d/%d)" % (self.ticks, self.budget)


def hours_to_ticks(hours, scale=1.0):
    """Convert paper-campaign hours to virtual ticks at ``scale``."""
    return int(hours * TICKS_PER_HOUR * scale)
