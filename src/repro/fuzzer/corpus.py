"""Queue (corpus) management.

Mirrors AFL's queue mechanics:

- every interesting test case becomes a :class:`QueueEntry` carrying its
  coverage trace and execution cost;
- ``top_rated`` keeps, per coverage-map index, the cheapest entry covering
  it (AFL's ``update_bitmap_score``, score = exec cost x input length);
- :meth:`Queue.cull` greedily marks a *favored* subset of entries that
  together cover every index — the fast set-cover approximation the paper
  reuses both for scheduling and as its culling criterion.
"""


class QueueEntry:
    """One retained test case."""

    __slots__ = (
        "entry_id",
        "data",
        "exec_cost",
        "trace",
        "classified",
        "favored",
        "was_fuzzed",
        "depth",
        "handicap",
        "found_at",
        "cmplog_done",
        "imported",
        "taint_focus",
    )

    def __init__(self, entry_id, data, exec_cost, classified, depth, found_at):
        self.entry_id = entry_id
        self.data = data
        self.exec_cost = exec_cost
        self.classified = classified
        self.trace = frozenset(classified)
        self.favored = False
        self.was_fuzzed = False
        self.depth = depth
        self.handicap = 0
        self.found_at = found_at
        self.cmplog_done = False
        # Synced in from another fuzzing instance (AFL++'s foreign queues).
        self.imported = False
        # Born from the taint-guided masked stage: the frozenset of focus
        # byte offsets that produced this entry (None otherwise).  The
        # scheduler gives such entries extra first-visit energy — they sit
        # on a rare-branch frontier by construction.
        self.taint_focus = None

    def score_key(self):
        """AFL's top_rated ordering: cheaper-to-run x shorter wins."""
        return self.exec_cost * max(len(self.data), 1)

    def clone(self):
        """Deep-enough copy for checkpoints (mutable flags detached)."""
        dup = QueueEntry(
            self.entry_id,
            self.data,
            self.exec_cost,
            self.classified,
            self.depth,
            self.found_at,
        )
        dup.favored = self.favored
        dup.was_fuzzed = self.was_fuzzed
        dup.handicap = self.handicap
        dup.cmplog_done = self.cmplog_done
        dup.imported = self.imported
        dup.taint_focus = self.taint_focus
        return dup

    def __repr__(self):
        return "QueueEntry(#%d, %dB, cost=%d, trace=%d%s)" % (
            self.entry_id,
            len(self.data),
            self.exec_cost,
            len(self.trace),
            ", favored" if self.favored else "",
        )


class Queue:
    """The fuzzer's corpus with AFL-style favored-entry culling."""

    __slots__ = ("entries", "top_rated", "_dirty", "pending_favored", "_next_id")

    def __init__(self):
        self.entries = []
        self.top_rated = {}
        self._dirty = False
        self.pending_favored = 0
        self._next_id = 0

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def make_entry(self, data, exec_cost, classified, depth, found_at):
        entry = QueueEntry(self._next_id, data, exec_cost, classified, depth, found_at)
        self._next_id += 1
        return entry

    def add(self, entry):
        """Append ``entry`` and update per-index champions."""
        self.entries.append(entry)
        key = entry.score_key()
        top = self.top_rated
        for idx in entry.trace:
            champion = top.get(idx)
            if champion is None or key < champion.score_key():
                top[idx] = entry
        self._dirty = True

    def cull(self):
        """Recompute the favored subset (AFL's ``cull_queue``).

        Greedy set cover over ``top_rated``: walk the covered indices; any
        index not yet covered by a previously chosen favorite promotes its
        champion.  Cheap, deterministic, and exactly the approximation the
        paper's culling strategy reuses.
        """
        if not self._dirty:
            return
        self._dirty = False
        for entry in self.entries:
            entry.favored = False
        uncovered = set(self.top_rated)
        for idx in sorted(self.top_rated):
            if idx not in uncovered:
                continue
            champion = self.top_rated[idx]
            champion.favored = True
            uncovered.difference_update(champion.trace)
        self.pending_favored = sum(
            1 for e in self.entries if e.favored and not e.was_fuzzed
        )

    def next_entry_id(self):
        """The id the next :meth:`make_entry` call will assign.

        Corpus sync uses this as a high-water mark: entries at or above a
        remembered mark are exactly those added since it was taken.
        """
        return self._next_id

    def entries_since(self, entry_id):
        """Entries created at or after ``entry_id`` (append order).

        Ids are assigned monotonically, so this is the delta between two
        :meth:`next_entry_id` marks — what instance-parallel workers offer
        at each corpus-sync barrier.
        """
        return [e for e in self.entries if e.entry_id >= entry_id]

    def snapshot(self):
        """Picklable snapshot of the whole corpus (for checkpoints).

        Entries are cloned so the snapshot stays frozen while the live
        queue keeps mutating per-entry flags (``was_fuzzed``, ``handicap``,
        ``favored``, ...).
        """
        return {
            "entries": [entry.clone() for entry in self.entries],
            "next_id": self._next_id,
            "dirty": self._dirty,
            "pending_favored": self.pending_favored,
        }

    def restore(self, snap):
        """Rebuild the queue from :meth:`snapshot` output.

        ``top_rated`` is reconstructed by replaying :meth:`add` in append
        order — identical comparisons, identical champions — then the cull
        bookkeeping is restored verbatim so a resumed engine culls exactly
        when the uninterrupted one would have.
        """
        self.entries = []
        self.top_rated = {}
        for entry in snap["entries"]:
            self.add(entry.clone())
        self._next_id = snap["next_id"]
        self._dirty = snap["dirty"]
        self.pending_favored = snap["pending_favored"]
        return self

    def favored_entries(self):
        """The current favored subset (culling if stale)."""
        self.cull()
        return [e for e in self.entries if e.favored]

    def covered_indices(self):
        """Every coverage-map index covered by some entry."""
        return set(self.top_rated)
