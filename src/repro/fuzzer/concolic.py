"""Engine-side state for the plateau-triggered concolic solver stage.

The escalation ladder's top rung (DESIGN §14): when the campaign's
coverage has stalled for a plateau window, rare frontier branches are
escalated from masked mutation to *concolic solving* — replay the
branch's champion seed under the shadow interpreter
(:mod:`repro.analysis.symbolic`), collect its path condition, and ask the
bounded solver (:mod:`repro.analysis.solver`) for bytes that flip the
guard.  Witnesses re-enter the corpus through the normal execution path,
so the queue only ever trusts real executions.

:class:`ConcolicState` mirrors :class:`repro.taint.targets.TaintState`:
it is the engine's mutable bookkeeping (visit budgets, counters, the
plateau detector), snapshots with the engine, and its absence (``None``)
means the stage is compiled out of the loop entirely — concolic-off
campaigns execute the exact pre-concolic instruction stream.

The stall signal is an engine-owned
:class:`~repro.telemetry.plateau.PlateauDetector` fed at the timeline
cadence.  It deliberately has **no bus**: the engine's detector must not
publish events (telemetry is pure observation, and a traced campaign
must equal an untraced one), so the telemetry layer keeps its own
detector for PlateauEvents and this one exists solely to gate
escalation.
"""

import os

from repro.telemetry.plateau import PlateauDetector, default_window

CONCOLIC_ENV = "REPRO_CONCOLIC"

_TRUTHY = ("1", "true", "on", "yes")


def concolic_enabled(flag=None):
    """Resolve the concolic switch: explicit argument, else ``REPRO_CONCOLIC``."""
    if flag is not None:
        return bool(flag)
    return (os.environ.get(CONCOLIC_ENV) or "").strip().lower() in _TRUTHY


class ConcolicState:
    """Mutable per-engine concolic bookkeeping (snapshot/restore-able).

    The branch index is a pure function of (program, instrumentation) and
    is rebuilt lazily after restore, like TaintState's.  The plateau
    detector IS snapshotted — a restored engine must resume with the same
    stall signal or escalation timing (and therefore the virtual clock)
    would diverge.
    """

    __slots__ = (
        "visits",
        "detector",
        "branch_index",
        "targets_selected",
        "extract_runs",
        "solve_attempts",
        "solved",
        "flips",
        "witness_execs",
    )

    def __init__(self):
        self.visits = {}  # map index -> times escalated
        self.detector = None  # created on first observe (needs the budget)
        self.branch_index = None  # lazily built; never snapshotted
        self.targets_selected = 0
        self.extract_runs = 0
        self.solve_attempts = 0
        self.solved = 0
        self.flips = 0
        self.witness_execs = 0

    def observe(self, tick, value, budget_ticks):
        """Feed one (tick, coverage) sample to the stall detector."""
        if self.detector is None:
            self.detector = PlateauDetector(default_window(budget_ticks))
        self.detector.observe(tick, value)

    def stalled(self):
        """True while coverage sits inside an open plateau."""
        return self.detector is not None and self.detector.open_plateau is not None

    def solve_rate(self):
        """Fraction of solve attempts that produced a witness."""
        return self.solved / self.solve_attempts if self.solve_attempts else 0.0

    def snapshot(self):
        return {
            "visits": dict(self.visits),
            "detector": self.detector.state() if self.detector is not None else None,
            "targets_selected": self.targets_selected,
            "extract_runs": self.extract_runs,
            "solve_attempts": self.solve_attempts,
            "solved": self.solved,
            "flips": self.flips,
            "witness_execs": self.witness_execs,
        }

    def restore(self, snap):
        self.visits = dict(snap["visits"])
        detector_state = snap["detector"]
        if detector_state is None:
            self.detector = None
        else:
            self.detector = PlateauDetector(detector_state["window"]).set_state(
                detector_state
            )
        self.branch_index = None
        self.targets_selected = snap["targets_selected"]
        self.extract_runs = snap["extract_runs"]
        self.solve_attempts = snap["solve_attempts"]
        self.solved = snap["solved"]
        self.flips = snap["flips"]
        self.witness_execs = snap["witness_execs"]
        return self
