"""Input-to-state mutation (a cmplog/RedQueen analogue).

The paper enables AFL++'s cmplog instrumentation for every fuzzer
configuration.  Our VM can execute a test case with comparison logging; the
harvested operand pairs — integer comparisons and ``memcmp`` byte windows —
drive direct substitutions: wherever one operand's encoding occurs in the
input, the other operand is patched in.  This solves magic-number and
keyword checks without symbolic execution, matching the "input-to-state
correspondence" of Redqueen (NDSS'19) in spirit.
"""

_WIDTHS = (1, 2, 4, 8)


def _encodings(value):
    """All byte encodings of an integer operand worth searching for."""
    result = []
    for width in _WIDTHS:
        masked = value & ((1 << (8 * width)) - 1)
        for order in ("big", "little"):
            encoded = masked.to_bytes(width, order)
            if encoded not in result:
                result.append(encoded)
    return result


def _substitutions(data, pattern, replacement, cap):
    """Inputs with each occurrence of ``pattern`` replaced by ``replacement``."""
    if not pattern or len(pattern) != len(replacement):
        return []
    out = []
    start = 0
    while len(out) < cap:
        pos = data.find(pattern, start)
        if pos < 0:
            break
        out.append(data[:pos] + replacement + data[pos + len(pattern) :])
        start = pos + 1
    return out


def candidates_from_log(data, cmp_log, max_candidates=64):
    """Derive substitution candidates for ``data`` from a comparison log.

    ``cmp_log`` holds ``(a, b)`` pairs: two ints (scalar comparisons) or two
    bytes objects (memcmp windows).  For every pair, occurrences of one
    side's encoding in ``data`` are patched to the other side.  Deduplicated
    and capped to keep the stage's execution budget bounded.
    """
    seen = set()
    seen_pairs = set()
    out = []
    for a, b in cmp_log:
        if len(out) >= max_candidates:
            break
        # A seed that loops over a comparison logs the same operand pair on
        # every iteration; each duplicate would re-derive an identical
        # candidate set (all already in ``seen``).  Skipping by normalized
        # pair key changes nothing in the output — both directions are
        # tried symmetrically below — and cuts the stage's derivation work.
        if isinstance(a, (int, bytes)) and type(a) is type(b):
            key = (a, b) if a <= b else (b, a)
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
        if isinstance(a, bytes):
            pairs = [(a, b), (b, a)]
            for pattern, replacement in pairs:
                for cand in _substitutions(data, pattern, replacement, 4):
                    if cand not in seen and cand != data:
                        seen.add(cand)
                        out.append(cand)
        else:
            if a == b:
                continue
            for pattern, replacement_value in ((a, b), (b, a)):
                for encoded in _encodings(pattern):
                    width = len(encoded)
                    masked = replacement_value & ((1 << (8 * width)) - 1)
                    for order in ("big", "little"):
                        repl = masked.to_bytes(width, order)
                        for cand in _substitutions(data, encoded, repl, 2):
                            if cand not in seen and cand != data:
                                seen.add(cand)
                                out.append(cand)
    return out[:max_candidates]
