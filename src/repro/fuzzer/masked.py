"""Masked mutation: Angora/FairFuzz-style byte-targeted operators.

Given a taint-derived ``(focus, frozen)`` split of the input's byte offsets
— *focus* are the bytes the target branch's comparison reads, *frozen* are
the bytes satisfying the guards on the way in — these operators concentrate
all mutation energy on the focus bytes and never touch the rest.  Keeping
the input length fixed is deliberate: any insertion or deletion would shift
the frozen bytes out from under the guards they satisfy.

Three stages, cheapest-per-bit first:

- :func:`masked_candidates` — input-to-state substitutions patched *only
  into focus bytes*, using the TaintMap's per-site operand samples;
- :func:`sweep_candidates` — exhaustive enumeration of tiny focus masks
  (Angora's exploitation phase; 255 executions per byte buys certainty on
  one-byte guards that havoc only hits with p = 1/256 per try);
- :func:`masked_havoc` — a stacked random stage restricted to focus
  positions, for masks too wide to enumerate.
"""

from repro.fuzzer.mutators import ARITH_MAX, INTERESTING_8

_WIDTHS = (1, 2, 4)


def masked_havoc(rng, data, focus, stacking_max=5):
    """Stacked random mutation over ``focus`` positions only.

    Returns new bytes (same length).  Stacks ``2**(1..stacking_max-1)``
    single-byte operators, each aimed at a random focus offset — bit flips,
    random bytes, interesting bytes, and small arithmetic, the width-1 core
    of the havoc repertoire.
    """
    positions = sorted(off for off in focus if 0 <= off < len(data))
    if not positions:
        return bytes(data)
    buf = bytearray(data)
    stacking = 1 << rng.randrange(1, max(2, stacking_max))
    for _ in range(stacking):
        pos = positions[rng.randrange(len(positions))]
        choice = rng.randrange(4)
        if choice == 0:
            buf[pos] ^= 1 << rng.randrange(8)
        elif choice == 1:
            buf[pos] = rng.randrange(256)
        elif choice == 2:
            buf[pos] = rng.choice(INTERESTING_8) & 0xFF
        else:
            delta = rng.randrange(1, ARITH_MAX + 1)
            if rng.random() < 0.5:
                delta = -delta
            buf[pos] = (buf[pos] + delta) & 0xFF
    return bytes(buf)


def sweep_candidates(data, focus):
    """Exhaustively enumerate every value of each focus byte, one at a time.

    Yields candidate inputs (current byte value skipped).  Intended for
    masks of one or two bytes, where 255 executions per byte make the stage
    *complete*: if flipping one focus byte can take the target branch, the
    sweep will find it.
    """
    for off in sorted(focus):
        if not 0 <= off < len(data):
            continue
        current = data[off]
        prefix = data[:off]
        suffix = data[off + 1 :]
        for value in range(256):
            if value == current:
                continue
            yield prefix + bytes((value,)) + suffix


def masked_candidates(data, tmap, focus, max_candidates=24):
    """Input-to-state substitutions restricted to focus bytes.

    For every comparison site whose operand masks intersect ``focus``, each
    sampled operand pair is patched into the *contiguous runs* of that
    operand's focus bytes — if one side of the comparison reads bytes
    ``{4,5}``, the other side's value is encoded there directly (both
    endians, every width that fits).  This is the cmplog idea with the
    search for the pattern replaced by taint's knowledge of its location.
    """
    out = []
    seen = set()
    length = len(data)
    for site in sorted(tmap.cmp_sites, key=repr):
        rec = tmap.cmp_sites[site]
        for side_mask, other_index in ((rec.mask_a, 1), (rec.mask_b, 0)):
            runs = _focus_runs(side_mask & focus, length)
            if not runs:
                continue
            for pair in rec.pairs:
                target = pair[other_index]
                for run_start, run_len in runs:
                    for cand in _patches(data, run_start, run_len, target):
                        if cand != data and cand not in seen:
                            seen.add(cand)
                            out.append(cand)
                            if len(out) >= max_candidates:
                                return out
    return out


def _focus_runs(offsets, length):
    """Maximal runs of contiguous offsets, as (start, run_length) pairs."""
    valid = sorted(off for off in offsets if 0 <= off < length)
    runs = []
    for off in valid:
        if runs and off == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((off, 1))
    return runs


def _patches(data, start, run_len, target):
    """Encodings of ``target`` patched into the run at ``start``."""
    out = []
    if isinstance(target, bytes):
        n = min(run_len, len(target))
        if n:
            out.append(data[:start] + target[:n] + data[start + n :])
        return out
    if not isinstance(target, int):
        return out
    for width in _WIDTHS:
        if width > run_len:
            break
        masked = target & ((1 << (8 * width)) - 1)
        for order in ("big", "little"):
            encoded = masked.to_bytes(width, order)
            for pos in range(start, start + run_len - width + 1):
                out.append(data[:pos] + encoded + data[pos + width :])
    return out
