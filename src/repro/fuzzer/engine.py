"""The greybox fuzzing engine.

:class:`FuzzEngine` is an AFL++-shaped loop: seed dry-run, queue cycling
with favored-entry skipping, power-scheduled havoc + splice stages, an
optional cmplog (input-to-state) stage, crash collection with eager
stack-hash dedup, and timeline sampling — all on the deterministic virtual
clock.  The *coverage feedback is a plug-in*: the engine never looks inside
map indices, so swapping :class:`~repro.coverage.feedback.EdgeFeedback` for
:class:`~repro.coverage.feedback.PathFeedback` changes exactly one component,
as in the paper.

:func:`afl_engine_config` yields the reduced configuration (legacy mutation
repertoire, no cmplog) approximating the AFL 2.52b base of PathAFL.
"""

from time import perf_counter as _perf_counter

from repro.analysis.solver import apply_witness, solve_flip
from repro.analysis.symbolic import extract_path_condition
from repro.coverage.bitmap import VirginMap, classify_hits
from repro.fuzzer.clock import EXEC_OVERHEAD, VirtualClock
from repro.fuzzer.cmplog import candidates_from_log
from repro.fuzzer.concolic import ConcolicState, concolic_enabled
from repro.fuzzer.corpus import Queue
from repro.fuzzer.masked import masked_candidates, masked_havoc, sweep_candidates
from repro.fuzzer.mutators import deterministic_mutations, havoc, splice
from repro.fuzzer.schedule import havoc_iterations, performance_score
from repro.fuzzer.store import content_hash
from repro.runtime.backend import make_backend
from repro.taint import TaintState, build_branch_index, select_targets, taint_enabled
from repro.triage.stacktrace import stack_hash


class EngineConfig:
    """Tunables of the fuzzing loop (defaults model AFL++ 4.07a)."""

    __slots__ = (
        "max_input_len",
        "use_cmplog",
        "use_splice",
        "use_det",
        "legacy_havoc",
        "havoc_multiplier",
        "exec_instr_budget",
        "call_depth_limit",
        "timeline_interval",
        "cmplog_max_candidates",
        "backend",
        "probe_prune",
        "saturation_interval",
        "use_taint",
        "taint_targets",
        "taint_energy",
        "taint_sweep_bytes",
        "taint_revisits",
        "use_concolic",
        "concolic_targets",
        "concolic_max_bytes",
        "concolic_node_budget",
        "concolic_revisits",
    )

    def __init__(
        self,
        max_input_len=512,
        use_cmplog=True,
        use_splice=True,
        use_det=False,
        legacy_havoc=False,
        havoc_multiplier=0.32,
        exec_instr_budget=60_000,
        call_depth_limit=64,
        timeline_interval=256,
        cmplog_max_candidates=48,
        backend=None,
        probe_prune=False,
        saturation_interval=0,
        use_taint=None,
        taint_targets=4,
        taint_energy=32,
        taint_sweep_bytes=2,
        taint_revisits=4,
        use_concolic=None,
        concolic_targets=2,
        concolic_max_bytes=4,
        concolic_node_budget=4096,
        concolic_revisits=2,
    ):
        self.max_input_len = max_input_len
        self.use_cmplog = use_cmplog
        self.use_splice = use_splice
        self.use_det = use_det
        self.legacy_havoc = legacy_havoc
        self.havoc_multiplier = havoc_multiplier
        self.exec_instr_budget = exec_instr_budget
        self.call_depth_limit = call_depth_limit
        self.timeline_interval = timeline_interval
        self.cmplog_max_candidates = cmplog_max_candidates
        # Execution backend: None defers to REPRO_BACKEND (default interp).
        # probe_prune elides flow-derivable probes under the compiled
        # backend (coverage maps unchanged; probe charges drop).
        # saturation_interval > 0 additionally de-instruments bucket-
        # saturated cells every that-many execs — a throughput layer that,
        # like changing instrumentation, perturbs the virtual clock.
        self.backend = backend
        self.probe_prune = probe_prune
        self.saturation_interval = saturation_interval
        # Taint-guided mutation (repro.taint): None defers to REPRO_TAINT
        # (default off).  Per queue cycle, ``taint_targets`` rare branches
        # are selected; masks of at most ``taint_sweep_bytes`` bytes are
        # enumerated exhaustively, wider ones get ``taint_energy`` masked
        # havoc executions; each branch is targeted at most
        # ``taint_revisits`` times per campaign.
        self.use_taint = use_taint
        self.taint_targets = taint_targets
        self.taint_energy = taint_energy
        self.taint_sweep_bytes = taint_sweep_bytes
        self.taint_revisits = taint_revisits
        # Concolic escalation (repro.analysis.symbolic/.solver): None
        # defers to REPRO_CONCOLIC (default off).  While coverage sits in
        # an open plateau, ``concolic_targets`` rare branches per queue
        # cycle get their champion's path condition extracted and the
        # guard solved (bounded to ``concolic_max_bytes`` symbolic bytes
        # and ``concolic_node_budget`` search nodes); each branch is
        # escalated at most ``concolic_revisits`` times per campaign.
        self.use_concolic = use_concolic
        self.concolic_targets = concolic_targets
        self.concolic_max_bytes = concolic_max_bytes
        self.concolic_node_budget = concolic_node_budget
        self.concolic_revisits = concolic_revisits


def afl_engine_config(**overrides):
    """The AFL 2.52b-flavoured configuration used by the Appendix C baselines."""
    defaults = dict(
        use_cmplog=False,
        legacy_havoc=True,
        use_det=False,
        havoc_multiplier=0.32,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


class CrashRecord:
    """A deduplicated crash bucket (first witness + occurrence count)."""

    __slots__ = ("data", "trap", "found_at", "afl_unique", "hash5", "count")

    def __init__(self, data, trap, found_at, afl_unique, hash5):
        self.data = data
        self.trap = trap
        self.found_at = found_at
        self.afl_unique = afl_unique
        self.hash5 = hash5
        self.count = 1

    def bug_id(self):
        return self.trap.bug_id()

    def __repr__(self):
        return "CrashRecord(%s, x%d)" % (self.trap.bug_id(), self.count)


class HangRecord:
    """A deduplicated hang bucket (first witness input + occurrence count).

    Hangs are first-class artifacts like crashes: the hanging input is
    retained (and streamed to the campaign store's ``hangs/`` directory when
    one is attached) instead of being silently discarded.  Deduplication is
    by input content hash — hang stacks are not meaningful the way crash
    stacks are, since the trap fires wherever the budget ran out.
    """

    __slots__ = ("data", "found_at", "input_hash", "count")

    def __init__(self, data, found_at, input_hash):
        self.data = data
        self.found_at = found_at
        self.input_hash = input_hash
        self.count = 1

    def __repr__(self):
        return "HangRecord(%dB, x%d)" % (len(self.data), self.count)


class FuzzEngine:
    """One fuzzing campaign phase over a single program and feedback.

    ``telemetry`` (optional) is a
    :class:`repro.telemetry.trace.EngineTelemetry`: when set, the engine
    times its stages (mutate / execute / classify / queue / cull) into span
    histograms and publishes periodic metric snapshots at the timeline
    cadence.  Telemetry is pure observation — it never touches the virtual
    clock or the RNG, is excluded from :meth:`snapshot` checkpoints, and a
    traced campaign's result equals an untraced one field for field.
    """

    def __init__(
        self, program, feedback, seeds, rng, config=None, tokens=(), telemetry=None
    ):
        self.program = program
        self.feedback = feedback
        self.instrumentation = feedback.instrument(program)
        self.rng = rng
        self.config = config or EngineConfig()
        self.backend = make_backend(
            program,
            self.instrumentation,
            backend=self.config.backend,
            probe_prune=self.config.probe_prune,
        )
        self.telemetry = telemetry
        self.tokens = tuple(bytes(t) for t in tokens)
        self.queue = Queue()
        self.virgin = VirginMap()
        self.crash_virgin = VirginMap()
        self.unique_crashes = {}  # stack hash -> CrashRecord
        self.unique_hangs = {}  # input content hash -> HangRecord
        # Optional durable workspace (repro.fuzzer.store.CampaignStore).
        # Like telemetry it is pure observation: new queue entries, crashes,
        # and hangs stream to disk as found, with no effect on the clock,
        # the RNG, or checkpoints.
        self.store = None
        self.crash_count = 0
        self.afl_unique_crash_count = 0
        self.execs = 0
        self.hangs = 0
        self.cycle = 0
        self.timeline = []
        self.clock = None
        self._queue_index = 0
        self._seeds = [bytes(s) for s in seeds]
        # Taint-guided targeting state (None when the subsystem is off, so
        # taint-off campaigns execute the exact pre-taint instruction
        # stream — the no-op overhead gate in CI pins this).
        self.taint = TaintState() if taint_enabled(self.config.use_taint) else None
        # Concolic escalation state (None when off — same contract: off
        # means the exact pre-concolic instruction stream, tick for tick).
        self.concolic = (
            ConcolicState() if concolic_enabled(self.config.use_concolic) else None
        )

    # -- the outer loop ------------------------------------------------------

    def run(self, budget_ticks):
        """Fuzz until the virtual budget expires; returns self for chaining."""
        self.start(budget_ticks)
        self.run_until(budget_ticks)
        self.finish()
        return self

    def start(self, budget_ticks):
        """Arm the clock and dry-run the seeds without fuzzing yet.

        Splitting :meth:`run` into ``start`` / :meth:`run_until` /
        :meth:`finish` lets instance-parallel campaigns pause the loop at
        corpus-sync barriers and resume it on the same clock.
        """
        self.clock = VirtualClock(budget_ticks)
        self._queue_index = 0
        if self.telemetry is not None:
            self.telemetry.begin(budget_ticks)
        self._dry_run_seeds()
        return self

    def run_until(self, tick_target):
        """Fuzz until the clock reaches ``tick_target`` (soft barrier).

        The barrier is checked between per-entry stages, so the loop may
        overshoot by one entry's worth of mutations — deterministically, as
        everything else on the virtual clock.
        """
        tick_target = min(tick_target, self.clock.budget)
        while self.clock.ticks < tick_target:
            if not self.queue.entries:
                # Every seed crashed or hung; fall back to random inputs.
                self._run_and_process(
                    bytes(self.rng.randrange(256) for _ in range(16)), depth=0
                )
                continue
            if self._queue_index >= len(self.queue.entries):
                self._queue_index = 0
                self.cycle += 1
                # Cycle-boundary stages run atomically w.r.t. the barrier:
                # breaking between them would skip the later stage for this
                # cycle and make barrier placement (checkpoint slicing)
                # perturb the trajectory.  Both stages bound their own work
                # against the clock *budget*, so overshoot stays bounded.
                if self.taint is not None:
                    self._taint_cycle()
                if self.concolic is not None:
                    self._concolic_cycle()
                if self.clock.ticks >= tick_target:
                    break
            entry = self.queue.entries[self._queue_index]
            self._queue_index += 1
            tel = self.telemetry
            if tel is None:
                self.queue.cull()
            else:
                t0 = _perf_counter()
                self.queue.cull()
                tel.record_stage("cull", _perf_counter() - t0)
            if self._should_skip(entry):
                if tel is not None:
                    tel.record_skipped()
                continue
            self._fuzz_one(entry)
            entry.was_fuzzed = True
        return self

    def finish(self):
        """Record the final timeline sample; returns self for chaining."""
        self._snapshot()
        if self.telemetry is not None:
            self.telemetry.finish(self.clock.ticks if self.clock else 0)
        return self

    # -- checkpoint / resume ---------------------------------------------------

    def snapshot(self):
        """Picklable deep snapshot of every piece of mutable campaign state.

        Captures the queue (entries, champions, cull bookkeeping), both
        virgin maps, the crash log, all counters, the timeline, the loop
        cursor, the virtual clock, and the RNG state — everything
        :meth:`run_until` reads or writes.  Taking a snapshot between
        barriers and restoring it into a freshly constructed engine (same
        program/feedback/seeds/config) yields a tick-for-tick identical
        continuation.
        """
        if self.clock is None:
            raise RuntimeError("engine not started; nothing to snapshot")
        crashes = [
            (
                hash5,
                record.data,
                record.trap,
                record.found_at,
                record.afl_unique,
                record.count,
            )
            for hash5, record in self.unique_crashes.items()
        ]
        hangs_log = [
            (digest, record.data, record.found_at, record.count)
            for digest, record in self.unique_hangs.items()
        ]
        return {
            "queue": self.queue.snapshot(),
            "hangs_log": hangs_log,
            "virgin": dict(self.virgin.bits),
            "crash_virgin": dict(self.crash_virgin.bits),
            "crashes": crashes,
            "crash_count": self.crash_count,
            "afl_unique_crash_count": self.afl_unique_crash_count,
            "execs": self.execs,
            "hangs": self.hangs,
            "cycle": self.cycle,
            "timeline": list(self.timeline),
            "queue_index": self._queue_index,
            "clock": self.clock.snapshot(),
            "rng": self.rng.getstate(),
            "taint": self.taint.snapshot() if self.taint is not None else None,
            "concolic": (
                self.concolic.snapshot() if self.concolic is not None else None
            ),
        }

    def restore(self, state):
        """Adopt a :meth:`snapshot` into this (freshly built) engine."""
        from repro.fuzzer.clock import VirtualClock

        self.queue = Queue()
        self.queue.restore(state["queue"])
        self.virgin = VirginMap()
        self.virgin.bits = dict(state["virgin"])
        self.crash_virgin = VirginMap()
        self.crash_virgin.bits = dict(state["crash_virgin"])
        self.unique_crashes = {}
        for hash5, data, trap, found_at, afl_unique, count in state["crashes"]:
            record = CrashRecord(data, trap, found_at, afl_unique, hash5)
            record.count = count
            self.unique_crashes[hash5] = record
        self.unique_hangs = {}
        for digest, data, found_at, count in state.get("hangs_log", ()):
            hang = HangRecord(data, found_at, digest)
            hang.count = count
            self.unique_hangs[digest] = hang
        self.crash_count = state["crash_count"]
        self.afl_unique_crash_count = state["afl_unique_crash_count"]
        self.execs = state["execs"]
        self.hangs = state["hangs"]
        self.cycle = state["cycle"]
        self.timeline = list(state["timeline"])
        self._queue_index = state["queue_index"]
        self.clock = VirtualClock.from_snapshot(state["clock"])
        self.rng.setstate(state["rng"])
        taint_snap = state.get("taint")
        if self.taint is not None and taint_snap is not None:
            self.taint.restore(taint_snap)
        concolic_snap = state.get("concolic")
        if self.concolic is not None and concolic_snap is not None:
            self.concolic.restore(concolic_snap)
        return self

    def save_checkpoint(self, path, meta=None, fingerprint=None):
        """Write a validated on-disk checkpoint (see :mod:`.checkpoint`)."""
        from repro.fuzzer.checkpoint import write_checkpoint

        meta = dict(meta or {})
        meta.setdefault("backend", self.backend.name)
        return write_checkpoint(
            path, self.snapshot(), meta=meta, fingerprint=fingerprint
        )

    def resume(self, path, fingerprint=None):
        """Restore a checkpoint file into this engine; returns its meta dict.

        The file is magic/version/fingerprint/digest-checked before any
        state is unpickled; stale or corrupt checkpoints raise a typed
        :class:`~repro.fuzzer.checkpoint.CheckpointError` and leave the
        engine untouched.
        """
        from repro.fuzzer.checkpoint import read_checkpoint

        state, meta = read_checkpoint(path, fingerprint=fingerprint)
        self.restore(state)
        return meta

    def import_input(self, data):
        """Adopt an input synced from another fuzzing instance.

        The input is re-executed under *this* engine's instrumentation (as
        AFL++'s ``sync_fuzzers`` re-runs synced cases) and queued only if it
        is locally novel.  Returns the new entry or ``None``.
        """
        entry = self._run_and_process(bytes(data), depth=0)
        if entry is not None:
            entry.imported = True
        return entry

    def _dry_run_seeds(self):
        for seed in self._seeds:
            if self.clock.expired():
                break
            result = self._execute(seed)
            if result.timeout:
                self._record_hang(seed)
                continue
            if result.crashed:
                self._record_crash(seed, result)
                continue
            classified = classify_hits(result.hits)
            entry = self.queue.make_entry(
                seed, result.virtual_cost, classified, depth=0, found_at=self.clock.ticks
            )
            self.queue.add(entry)
            self.virgin.merge(classified)
            if self.store is not None:
                self.store.save_queue_entry(entry)

    def _should_skip(self, entry):
        """AFL's probabilistic skipping of non-favored entries."""
        if entry.favored:
            return False
        self.queue.cull()
        if self.queue.pending_favored > 0:
            return self.rng.random() < 0.99
        if len(self.queue.entries) > 10:
            if entry.was_fuzzed:
                return self.rng.random() < 0.95
            return self.rng.random() < 0.75
        return False

    # -- per-entry stages ------------------------------------------------------

    def _fuzz_one(self, entry):
        config = self.config
        avg_cost, avg_trace = self._averages()
        score = performance_score(entry, avg_cost, avg_trace)
        iterations = havoc_iterations(score, config.havoc_multiplier)
        if config.use_cmplog and not entry.cmplog_done:
            self._cmplog_stage(entry)
            entry.cmplog_done = True
        if config.use_det and entry.favored and not entry.was_fuzzed:
            for candidate in deterministic_mutations(entry.data, self.tokens):
                if self.clock.expired():
                    return
                self._run_and_process(candidate[: config.max_input_len], entry.depth + 1)
        tel = self.telemetry
        for _ in range(iterations):
            if self.clock.expired():
                return
            t0 = _perf_counter() if tel is not None else 0.0
            mutated = havoc(
                self.rng,
                entry.data,
                config.max_input_len,
                self.tokens,
                legacy=config.legacy_havoc,
            )
            if tel is not None:
                tel.record_stage("mutate", _perf_counter() - t0)
            self._run_and_process(mutated, entry.depth + 1)
        if config.use_splice and len(self.queue.entries) > 1:
            for _ in range(max(2, iterations // 4)):
                if self.clock.expired():
                    return
                other = self.rng.choice(self.queue.entries)
                t0 = _perf_counter() if tel is not None else 0.0
                spliced = splice(self.rng, entry.data, other.data)
                mutated = havoc(
                    self.rng,
                    spliced,
                    config.max_input_len,
                    self.tokens,
                    legacy=config.legacy_havoc,
                )
                if tel is not None:
                    tel.record_stage("mutate", _perf_counter() - t0)
                self._run_and_process(mutated, entry.depth + 1)

    # -- taint-guided masked mutation (repro.taint) ---------------------------

    def _taint_cycle(self):
        """Once per queue cycle: pick rare branch targets, focus energy on them."""
        taint = self.taint
        if taint.branch_index is None:
            taint.branch_index = build_branch_index(self.program, self.instrumentation)
        targets = select_targets(
            self.queue,
            taint.branch_index,
            self.config.taint_targets,
            visits=taint.visits,
            max_visits=self.config.taint_revisits,
        )
        for target in targets:
            if self.clock.expired():
                return
            taint.visits[target.index] = taint.visits.get(target.index, 0) + 1
            taint.targets_selected += 1
            self._taint_target_stage(target)

    def _taint_map_for(self, entry):
        """The entry's TaintMap, from cache or a fresh (clock-charged) taint run."""
        taint = self.taint
        tmap = taint.cached_map(entry.entry_id)
        if tmap is not None:
            return tmap
        tel = self.telemetry
        t0 = _perf_counter() if tel is not None else 0.0
        result, tmap = self.backend.taint_execute(
            entry.data,
            instr_budget=self.config.exec_instr_budget,
            call_depth_limit=self.config.call_depth_limit,
        )
        if tel is not None:
            tel.record_exec(_perf_counter() - t0, result)
        # A taint run is an execution like any other on the virtual clock.
        self.clock.charge(EXEC_OVERHEAD + result.virtual_cost + len(result.hits) // 4)
        self.execs += 1
        taint.taint_runs += 1
        if self.execs % self.config.timeline_interval == 0:
            self._snapshot()
        if result.crashed or result.timeout:
            # A queue entry that stopped replaying clean (nondeterministic
            # programs don't exist here, but budget-boundary hangs can):
            # nothing to target.
            return None
        taint.cache_map(entry.entry_id, tmap)
        return tmap

    def _taint_target_stage(self, target):
        """Masked I2S + sweep/havoc aimed at one rare-branch target."""
        config = self.config
        entry = target.entry
        tmap = self._taint_map_for(entry)
        if tmap is None:
            return
        focus, frozen = tmap.target_masks(target.site, len(entry.data))
        if not focus:
            return
        if self.telemetry is not None:
            self.telemetry.record_taint(target, focus, frozen)
        for candidate in masked_candidates(entry.data, tmap, focus):
            if self.clock.expired():
                return
            self._masked_run(candidate, entry, target, focus)
        if len(focus) <= config.taint_sweep_bytes:
            # Tiny mask: enumerate it outright (Angora's exploitation).
            for candidate in sweep_candidates(entry.data, focus):
                if self.clock.expired():
                    return
                if self._masked_run(candidate, entry, target, focus):
                    return
        else:
            for _ in range(config.taint_energy):
                if self.clock.expired():
                    return
                mutated = masked_havoc(self.rng, entry.data, focus)
                self._masked_run(mutated, entry, target, focus)

    def _masked_run(self, data, parent, target, focus):
        """Execute one masked mutation; True when the target branch flipped."""
        taint = self.taint
        tel = self.telemetry
        taint.masked_execs += 1
        result = self._execute(data)
        if result.timeout:
            self._record_hang(data)
            if tel is not None:
                tel.record_masked(False)
            return False
        if result.crashed:
            self._record_crash(data, result)
            taint.masked_hits += 1  # reaching a trigger is the jackpot case
            if tel is not None:
                tel.record_masked(True)
            return True
        sibling = target.sibling_index
        hit = sibling is not None and sibling in result.hits
        if hit:
            taint.masked_hits += 1
        if tel is not None:
            tel.record_masked(hit)
        entry = self._process_result(data, result, parent.depth + 1)
        if entry is not None:
            entry.taint_focus = frozenset(focus)
        return hit

    # -- plateau-triggered concolic escalation (repro.analysis) ----------------

    def _concolic_cycle(self):
        """Once per queue cycle *while coverage is stalled*: solve rare guards."""
        concolic = self.concolic
        if not concolic.stalled():
            return
        if concolic.branch_index is None:
            concolic.branch_index = build_branch_index(
                self.program, self.instrumentation
            )
        targets = select_targets(
            self.queue,
            concolic.branch_index,
            self.config.concolic_targets,
            visits=concolic.visits,
            max_visits=self.config.concolic_revisits,
        )
        for target in targets:
            if self.clock.expired():
                return
            concolic.visits[target.index] = concolic.visits.get(target.index, 0) + 1
            concolic.targets_selected += 1
            self._concolic_target_stage(target)

    def _concolic_target_stage(self, target):
        """Extract the champion's path condition, solve flips of the guard."""
        config = self.config
        concolic = self.concolic
        entry = target.entry
        # Taint narrows the symbolic variable set to the branch's sound
        # focus mask when available; without taint every byte is symbolic.
        sym_bytes = None
        if self.taint is not None:
            tmap = self._taint_map_for(entry)
            if tmap is not None:
                focus, _frozen = tmap.target_masks(target.site, len(entry.data))
                if focus:
                    sym_bytes = focus
        tel = self.telemetry
        t0 = _perf_counter() if tel is not None else 0.0
        result, condition = extract_path_condition(
            self.program,
            entry.data,
            sym_bytes=sym_bytes,
            instr_budget=config.exec_instr_budget,
            call_depth_limit=config.call_depth_limit,
        )
        if tel is not None:
            tel.record_exec(_perf_counter() - t0, result)
        # The shadow replay is an execution like any other on the clock.
        self.clock.charge(EXEC_OVERHEAD + result.virtual_cost)
        self.execs += 1
        concolic.extract_runs += 1
        if self.execs % config.timeline_interval == 0:
            self._snapshot()
        if result.crashed or result.timeout:
            return
        for constraint in condition.at_site(target.site)[:2]:
            if self.clock.expired():
                return
            concolic.solve_attempts += 1
            assignment, stats = solve_flip(
                constraint,
                condition.prefix(constraint.index),
                entry.data,
                max_bytes=config.concolic_max_bytes,
                node_budget=config.concolic_node_budget,
            )
            # Solving is deterministic work; it pays clock like mutation.
            self.clock.charge(stats.clock_cost())
            if assignment is not None:
                concolic.solved += 1
            flipped = False
            if assignment is not None:
                witness = apply_witness(entry.data, assignment)
                flipped = self._witness_run(witness, entry, target)
                if flipped:
                    concolic.flips += 1
            if tel is not None:
                tel.record_concolic(target, stats, assignment is not None, flipped)
            if flipped:
                return

    def _witness_run(self, data, parent, target):
        """Execute one solver witness; True when the target branch flipped."""
        concolic = self.concolic
        concolic.witness_execs += 1
        result = self._execute(data)
        if result.timeout:
            self._record_hang(data)
            return False
        if result.crashed:
            self._record_crash(data, result)
            return True  # reaching a trigger is the jackpot case
        sibling = target.sibling_index
        hit = sibling is not None and sibling in result.hits
        self._process_result(data, result, parent.depth + 1)
        return hit

    def _cmplog_stage(self, entry):
        """Harvest comparison operands, then try direct substitutions."""
        result = self._execute(entry.data, cmplog=True)
        if result.crashed or result.timeout:
            return
        candidates = candidates_from_log(
            entry.data, result.cmp_log, self.config.cmplog_max_candidates
        )
        for candidate in candidates:
            if self.clock.expired():
                return
            self._run_and_process(
                candidate[: self.config.max_input_len], entry.depth + 1
            )

    def _averages(self):
        entries = self.queue.entries
        if not entries:
            return 0, 0
        total_cost = sum(e.exec_cost for e in entries)
        total_trace = sum(len(e.trace) for e in entries)
        return total_cost / len(entries), total_trace / len(entries)

    # -- execution plumbing ----------------------------------------------------

    def _execute(self, data, cmplog=False):
        tel = self.telemetry
        t0 = _perf_counter() if tel is not None else 0.0
        result = self.backend.execute(
            data,
            instr_budget=self.config.exec_instr_budget,
            call_depth_limit=self.config.call_depth_limit,
            cmplog=cmplog,
        )
        if tel is not None:
            # The "execute" span is the backend's whole run for one input:
            # dispatch, probe actions, and budget accounting.
            tel.record_exec(_perf_counter() - t0, result)
        # Virtual cost: the run itself + the novelty scan over its trace.
        self.clock.charge(EXEC_OVERHEAD + result.virtual_cost + len(result.hits) // 4)
        self.execs += 1
        if self.execs % self.config.timeline_interval == 0:
            self._snapshot()
        interval = self.config.saturation_interval
        if interval and self.execs % interval == 0:
            # Reads only the virgin map, so resuming a checkpoint replays
            # the same respecialization points.
            self.backend.respecialize(self.virgin)
        return result

    def _run_and_process(self, data, depth):
        """Execute a candidate; queue it if novel.  Returns the new entry."""
        result = self._execute(data)
        if result.timeout:
            self._record_hang(data)
            return None
        if result.crashed:
            self._record_crash(data, result)
            return None
        return self._process_result(data, result, depth)

    def _process_result(self, data, result, depth):
        """Novelty-check a clean result; queue and return the entry if new."""
        tel = self.telemetry
        t0 = _perf_counter() if tel is not None else 0.0
        classified = classify_hits(result.hits)
        new_indices, new_buckets = self.virgin.probe(classified)
        if tel is not None:
            tel.record_stage("classify", _perf_counter() - t0)
        if not (new_indices or new_buckets):
            return None
        t0 = _perf_counter() if tel is not None else 0.0
        entry = self.queue.make_entry(
            data, result.virtual_cost, classified, depth, found_at=self.clock.ticks
        )
        entry.handicap = self.cycle
        self.queue.add(entry)
        self.virgin.merge(classified)
        if self.store is not None:
            self.store.save_queue_entry(entry)
        if tel is not None:
            tel.record_stage("queue", _perf_counter() - t0)
            tel.record_queued()
        return entry

    def _record_crash(self, data, result):
        self.crash_count += 1
        classified = classify_hits(result.hits)
        new_indices, new_buckets = self.crash_virgin.probe(classified)
        afl_unique = new_indices or new_buckets
        if afl_unique:
            self.afl_unique_crash_count += 1
            self.crash_virgin.merge(classified)
        hash5 = stack_hash(result.trap.stack)
        record = self.unique_crashes.get(hash5)
        if record is None:
            record = CrashRecord(data, result.trap, self.clock.ticks, afl_unique, hash5)
            self.unique_crashes[hash5] = record
            if self.store is not None:
                self.store.save_crash(record)
        else:
            record.count += 1

    def _record_hang(self, data):
        """Count a timeout and retain its input (first witness per content)."""
        self.hangs += 1
        digest = content_hash(data)
        record = self.unique_hangs.get(digest)
        if record is None:
            record = HangRecord(bytes(data), self.clock.ticks, digest)
            self.unique_hangs[digest] = record
            if self.store is not None:
                self.store.save_hang(data)
        else:
            record.count += 1

    def _snapshot(self):
        coverage = self.virgin.coverage_count()
        if self.concolic is not None:
            # The engine-owned stall detector rides the timeline cadence;
            # it has no bus, so traced and untraced campaigns stay equal.
            self.concolic.observe(self.clock.ticks, coverage, self.clock.budget)
        self.timeline.append(
            (
                self.clock.ticks,
                len(self.queue.entries),
                coverage,
                self.crash_count,
                self.execs,
            )
        )
        if self.telemetry is not None:
            self.telemetry.sample(
                self.clock.ticks,
                coverage,
                len(self.queue.entries),
                self.crash_count,
                self.execs,
            )

    # -- results ---------------------------------------------------------------

    def corpus_inputs(self):
        """The raw bytes of every queue entry (for strategies and replay)."""
        return [entry.data for entry in self.queue.entries]

    def throughput(self):
        """Executions per virtual hour (the clock's native campaign unit)."""
        if self.clock is None or self.clock.ticks == 0:
            return 0.0
        from repro.fuzzer.clock import TICKS_PER_HOUR

        return self.execs / (self.clock.ticks / TICKS_PER_HOUR)
