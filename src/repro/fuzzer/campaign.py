"""Campaign results and the afl-showmap-style coverage replay.

A :class:`CampaignResult` is the durable record of one fuzzing run —
everything the paper's tables consume: ground-truth unique bugs, stack-hash
unique crashes, raw crash counts, final queue size, the *edge* coverage of
the final queue (measured by replaying it under edge instrumentation with a
separate pcguard-instrumented binary, exactly as the paper does with
``afl-showmap``), execution counts, and the queue-size timeline.
"""

from repro.coverage.feedback import EdgeFeedback
from repro.runtime.interpreter import execute


class CrashInfo:
    """Plain (picklable) record of one deduplicated crash bucket."""

    __slots__ = ("bug", "hash5", "kind", "count", "afl_unique", "found_at", "stack")

    def __init__(self, bug, hash5, kind, count, afl_unique, found_at, stack):
        self.bug = bug  # (function, line, kind) ground-truth identity
        self.hash5 = hash5  # top-5-frame stack hash (the "unique crash" id)
        self.kind = kind
        self.count = count
        self.afl_unique = afl_unique
        self.found_at = found_at
        self.stack = stack  # ((function, line), ...) innermost first

    def bug_id(self):
        return self.bug

    def _state(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __eq__(self, other):
        """Field-wise value equality (parallel/sequential determinism checks)."""
        return isinstance(other, CrashInfo) and self._state() == other._state()

    def __repr__(self):
        return "CrashInfo(%s x%d)" % (self.bug, self.count)


class HangInfo:
    """Plain (picklable) record of one deduplicated hang bucket.

    Hangs are first-class campaign artifacts: the hanging *input* is carried
    (it is how a hang is reproduced — there is no meaningful stack), keyed by
    its content hash, with the first-seen tick and an occurrence count.
    """

    __slots__ = ("input_hash", "data", "count", "found_at")

    def __init__(self, input_hash, data, count, found_at):
        self.input_hash = input_hash
        self.data = data
        self.count = count
        self.found_at = found_at

    def _state(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __eq__(self, other):
        return isinstance(other, HangInfo) and self._state() == other._state()

    def __repr__(self):
        return "HangInfo(%dB x%d @%d)" % (len(self.data), self.count, self.found_at)


class CampaignResult:
    """Outcome of one (subject, fuzzer-config, run-seed) campaign."""

    # Campaign *science* — what the paper's tables consume, and what the
    # determinism contract (__eq__) covers.
    _SCIENCE_SLOTS = (
        "subject_name",
        "config_name",
        "run_seed",
        "bugs",
        "crash_records",
        "crash_count",
        "afl_unique_crash_count",
        "queue_size",
        "edges",
        "execs",
        "hangs",
        "hang_records",
        "ticks",
        "throughput",
        "timeline",
    )

    # Supervision and observability metadata: how bumpy the *execution* was
    # (worker restarts, dropped workers) and what the telemetry layer
    # derived from the timeline (coverage plateaus).  Deliberately excluded
    # from __eq__ — a campaign that was killed and recovered, or traced,
    # must compare equal to the undisturbed/untraced one.
    __slots__ = _SCIENCE_SLOTS + (
        "degraded",
        "degraded_reasons",
        "worker_restarts",
        "plateaus",
    )

    def __init__(
        self,
        subject_name,
        config_name,
        run_seed,
        bugs,
        crash_records,
        crash_count,
        afl_unique_crash_count,
        queue_size,
        edges,
        execs,
        hangs,
        ticks,
        throughput,
        timeline,
        hang_records=(),
        degraded=False,
        degraded_reasons=(),
        worker_restarts=(),
        plateaus=(),
    ):
        self.subject_name = subject_name
        self.config_name = config_name
        self.run_seed = run_seed
        self.bugs = bugs
        self.crash_records = crash_records
        self.crash_count = crash_count
        self.afl_unique_crash_count = afl_unique_crash_count
        self.queue_size = queue_size
        self.edges = edges
        self.execs = execs
        self.hangs = hangs
        self.hang_records = tuple(hang_records)
        self.ticks = ticks
        self.throughput = throughput
        self.timeline = timeline
        # Why each worker was dropped: (worker, cause, detail) tuples —
        # e.g. ("restart-budget", "deadline") — alongside the legacy bool.
        self.degraded_reasons = tuple(degraded_reasons)
        self.degraded = bool(degraded) or bool(self.degraded_reasons)
        self.worker_restarts = tuple(worker_restarts)
        self.plateaus = tuple(plateaus)

    @property
    def unique_crash_hashes(self):
        """Stack-hash identities of the clustered crashes."""
        return {record.hash5 for record in self.crash_records}

    def _state(self):
        return tuple(getattr(self, slot) for slot in self._SCIENCE_SLOTS)

    def __eq__(self, other):
        """Field-wise value equality over the campaign-science fields.

        Sequential and parallel matrix runs of the same (subject, config,
        run-seed) cell must produce *equal* results — this is the contract
        the parallel runner's determinism test checks, and what makes the
        pickle round-trip through worker pipes verifiable.  Supervision
        metadata (``degraded``, ``worker_restarts``) is excluded: a
        killed-and-recovered campaign must equal the uninterrupted one.
        """
        return isinstance(other, CampaignResult) and self._state() == other._state()

    def __repr__(self):
        return "CampaignResult(%s/%s#%d: bugs=%d, crashes=%d, queue=%d)" % (
            self.subject_name,
            self.config_name,
            self.run_seed,
            len(self.bugs),
            len(self.crash_records),
            self.queue_size,
        )


def replay_edge_coverage(program, inputs, instr_budget=200_000):
    """Union of edge-map indices covered by ``inputs`` (afl-showmap analogue).

    The replay always uses :class:`EdgeFeedback`, independent of the
    feedback the campaign fuzzed with — the paper's Table IV methodology.
    """
    instrumentation = EdgeFeedback().instrument(program)
    covered = set()
    for data in inputs:
        result = execute(program, data, instrumentation, instr_budget=instr_budget)
        covered.update(result.hits)
    return covered


def result_from_engines(subject, config_name, run_seed, engines, final_engine):
    """Assemble a CampaignResult from one or more engine phases.

    ``engines`` lists every phase that contributed crashes (culling rounds,
    the opportunistic path phase, ...); ``final_engine`` supplies the final
    queue, whose inputs are replayed for edge coverage.  Crash records are
    merged across phases by stack hash (counts accumulate).
    """
    merged = {}
    merged_hangs = {}
    crash_count = 0
    afl_unique = 0
    execs = 0
    hangs = 0
    ticks = 0
    timeline = []
    for engine in engines:
        crash_count += engine.crash_count
        afl_unique += engine.afl_unique_crash_count
        execs += engine.execs
        hangs += engine.hangs
        for digest, hang in engine.unique_hangs.items():
            existing = merged_hangs.get(digest)
            if existing is None:
                merged_hangs[digest] = HangInfo(
                    input_hash=digest,
                    data=hang.data,
                    count=hang.count,
                    found_at=ticks + hang.found_at,
                )
            else:
                existing.count += hang.count
        for hash5, record in engine.unique_crashes.items():
            existing = merged.get(hash5)
            if existing is None:
                merged[hash5] = CrashInfo(
                    bug=record.trap.bug_id(),
                    hash5=hash5,
                    kind=record.trap.kind,
                    count=record.count,
                    afl_unique=record.afl_unique,
                    found_at=ticks + record.found_at,
                    stack=tuple(f.key() for f in record.trap.stack),
                )
            else:
                existing.count += record.count
        phase_ticks = engine.clock.ticks if engine.clock else 0
        for sample in engine.timeline:
            timeline.append((ticks + sample[0],) + sample[1:])
        ticks += phase_ticks
    records = list(merged.values())
    bugs = {record.bug_id() for record in records}
    edges = replay_edge_coverage(subject.program, final_engine.corpus_inputs())
    from repro.fuzzer.clock import TICKS_PER_HOUR
    from repro.telemetry.plateau import default_window, detect_plateaus

    # Executions per virtual hour, the clock's native campaign unit.
    throughput = execs / (ticks / TICKS_PER_HOUR) if ticks else 0.0
    # Coverage plateaus, derived deterministically from the timeline the
    # engine records anyway — populated whether or not tracing was on, and
    # excluded from __eq__ like all observability metadata.  The stall
    # window scales with the campaign budget, not the observed timeline
    # span: short campaigns sample sparsely, and a span-derived window
    # would flag the gap between two final snapshots as a "plateau".
    plateaus = detect_plateaus(
        [(t[0], t[2]) for t in timeline], window=default_window(ticks)
    )
    return CampaignResult(
        subject_name=subject.name,
        config_name=config_name,
        run_seed=run_seed,
        bugs=bugs,
        crash_records=records,
        crash_count=crash_count,
        afl_unique_crash_count=afl_unique,
        queue_size=len(final_engine.queue.entries),
        edges=frozenset(edges),
        execs=execs,
        hangs=hangs,
        hang_records=tuple(merged_hangs.values()),
        ticks=ticks,
        throughput=throughput,
        timeline=timeline,
        plateaus=plateaus,
    )
