"""Corpus minimization (an ``afl-cmin`` analogue).

The paper notes its culling uses the favored-corpus construction because it
was "more efficient than using the afl-cmin queue minimization tool, for
equivalent results".  This module provides the afl-cmin-style alternative —
a two-pass greedy set cover that prefers the smallest input per coverage
index and processes rarest indices first — so the equivalence claim is
testable here too (see the culling ablation tests).
"""

from repro.coverage.feedback import EdgeFeedback
from repro.runtime.interpreter import execute


def minimize_corpus(program, inputs, feedback=None, instr_budget=60_000):
    """Select a subset of ``inputs`` preserving their combined coverage.

    Mirrors afl-cmin: (1) trace every input; (2) for each coverage index
    keep the smallest input touching it; (3) walk indices from rarest to
    most common, greedily keeping each index's champion until everything is
    covered.  Returns the selected inputs in their original order.
    """
    feedback = feedback or EdgeFeedback()
    instrumentation = feedback.instrument(program)
    traces = []
    for data in inputs:
        result = execute(program, data, instrumentation, instr_budget=instr_budget)
        if result.crashed or result.timeout:
            traces.append(frozenset())
        else:
            traces.append(frozenset(result.hits))

    index_owners = {}
    for position, trace in enumerate(traces):
        for idx in trace:
            index_owners.setdefault(idx, []).append(position)

    # Champion per index: smallest input, ties by earliest position.
    champion = {}
    for idx, owners in index_owners.items():
        champion[idx] = min(owners, key=lambda p: (len(inputs[p]), p))

    # Rarest-first greedy cover (afl-cmin's ordering heuristic).
    order = sorted(index_owners, key=lambda idx: (len(index_owners[idx]), idx))
    chosen = set()
    covered = set()
    for idx in order:
        if idx in covered:
            continue
        position = champion[idx]
        chosen.add(position)
        covered.update(traces[position])
    return [inputs[p] for p in sorted(chosen)]


def coverage_of(program, inputs, feedback=None, instr_budget=60_000):
    """Combined coverage-index set of ``inputs`` under ``feedback``."""
    feedback = feedback or EdgeFeedback()
    instrumentation = feedback.instrument(program)
    covered = set()
    for data in inputs:
        result = execute(program, data, instrumentation, instr_budget=instr_budget)
        if not (result.crashed or result.timeout):
            covered.update(result.hits)
    return covered
