"""Versioned, fingerprint-guarded on-disk campaign checkpoints.

A checkpoint file is the durable snapshot of one :class:`FuzzEngine`'s
mutable state (queue, virgin maps, RNG, schedule counters, crash log,
clock), written so a killed-and-resumed campaign is tick-for-tick identical
to an uninterrupted one.  The format is deliberately paranoid — real
campaigns die mid-write, get restored onto changed source trees, and read
files produced by other versions of themselves:

``MAGIC | version | source fingerprint | payload sha256 | pickled payload``

- a wrong magic or a payload whose digest does not match (torn/truncated
  write) raises :class:`CheckpointCorruptError`;
- a version or source-fingerprint mismatch (the engine changed underneath
  the snapshot, so resuming would silently diverge) raises
  :class:`CheckpointStaleError`.

Nothing here unpickles a byte of payload before every header check passes.
Writes are atomic (tmp file + ``os.replace``), so a crash during
:func:`write_checkpoint` leaves the previous checkpoint intact.
"""

import hashlib
import os
import pickle

MAGIC = b"REPROCKPT\x00"
VERSION = 1
_FINGERPRINT_LEN = 16  # hex chars, matching runner._source_fingerprint()
_HEADER_LEN = len(MAGIC) + 2 + _FINGERPRINT_LEN + 32


class CheckpointError(RuntimeError):
    """Base class: a checkpoint file cannot be used.

    Every concrete error is *actionable*: it carries the offending
    ``path``, which header ``field`` failed validation, and the
    ``expected`` vs. ``found`` values — enough for an operator (or a
    supervisor log line) to tell a torn write from a version skew from a
    source-tree change without opening the file.
    """

    def __init__(self, message, path=None, field=None, expected=None, found=None):
        super().__init__(message)
        self.path = path
        self.field = field
        self.expected = expected
        self.found = found


class CheckpointCorruptError(CheckpointError):
    """Not a checkpoint, or a torn/truncated/bit-rotted one."""


class CheckpointStaleError(CheckpointError):
    """A checkpoint from another format version or source tree."""


def default_fingerprint():
    """The package-source fingerprint checkpoints are guarded by.

    Reuses the experiment runner's cache fingerprint: if the sources
    changed, cached results *and* checkpoints are equally untrustworthy.
    """
    from repro.experiments.runner import source_fingerprint

    return source_fingerprint()


def _normalize_fingerprint(fingerprint):
    fingerprint = default_fingerprint() if fingerprint is None else str(fingerprint)
    if len(fingerprint) != _FINGERPRINT_LEN:
        raise ValueError(
            "fingerprint must be %d hex chars, got %r" % (_FINGERPRINT_LEN, fingerprint)
        )
    return fingerprint


def write_checkpoint(path, state, meta=None, fingerprint=None):
    """Atomically write ``state`` (any picklable object) plus ``meta`` dict."""
    fingerprint = _normalize_fingerprint(fingerprint)
    payload = pickle.dumps(
        {"meta": dict(meta or {}), "state": state}, protocol=pickle.HIGHEST_PROTOCOL
    )
    header = (
        MAGIC
        + VERSION.to_bytes(2, "big")
        + fingerprint.encode("ascii")
        + hashlib.sha256(payload).digest()
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def read_checkpoint(path, fingerprint=None, check_fingerprint=True):
    """Validate and load a checkpoint; returns ``(state, meta)``.

    Raises :class:`CheckpointCorruptError` / :class:`CheckpointStaleError`
    instead of ever unpickling garbage.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER_LEN:
        raise CheckpointCorruptError(
            "%s: %d bytes is shorter than the %d-byte checkpoint header "
            "(truncated write?)" % (path, len(blob), _HEADER_LEN),
            path=path,
            field="length",
            expected=_HEADER_LEN,
            found=len(blob),
        )
    if not blob.startswith(MAGIC):
        raise CheckpointCorruptError(
            "%s: bad magic; not a repro checkpoint" % path,
            path=path,
            field="magic",
            expected=MAGIC,
            found=bytes(blob[: len(MAGIC)]),
        )
    offset = len(MAGIC)
    version = int.from_bytes(blob[offset : offset + 2], "big")
    offset += 2
    if version != VERSION:
        raise CheckpointStaleError(
            "%s: checkpoint format v%d, this build reads v%d"
            % (path, version, VERSION),
            path=path,
            field="version",
            expected=VERSION,
            found=version,
        )
    stored_fp = blob[offset : offset + _FINGERPRINT_LEN].decode("ascii", "replace")
    offset += _FINGERPRINT_LEN
    if check_fingerprint:
        expected_fp = _normalize_fingerprint(fingerprint)
        if stored_fp != expected_fp:
            raise CheckpointStaleError(
                "%s: written by source tree %s but this tree is %s; "
                "refusing to resume across code changes"
                % (path, stored_fp, expected_fp),
                path=path,
                field="fingerprint",
                expected=expected_fp,
                found=stored_fp,
            )
    digest = blob[offset : offset + 32]
    offset += 32
    payload = blob[offset:]
    found_digest = hashlib.sha256(payload).digest()
    if found_digest != digest:
        raise CheckpointCorruptError(
            "%s: payload sha256 %s does not match header %s over %d payload "
            "bytes (truncated or corrupt write)"
            % (path, found_digest.hex()[:16], digest.hex()[:16], len(payload)),
            path=path,
            field="sha256",
            expected=digest.hex(),
            found=found_digest.hex(),
        )
    try:
        record = pickle.loads(payload)
        state = record["state"]
        meta = record["meta"]
    except CheckpointError:
        raise
    except Exception as exc:
        # Digest-valid but undecodable: written by a different pickle
        # universe (missing class, protocol skew) — still a typed error,
        # never a raw EOFError/UnpicklingError escaping to the caller.
        raise CheckpointCorruptError(
            "%s: undecodable payload (%s: %s)" % (path, type(exc).__name__, exc),
            path=path,
            field="payload",
            expected="pickled {meta, state} record",
            found="%s: %s" % (type(exc).__name__, exc),
        )
    return state, meta
