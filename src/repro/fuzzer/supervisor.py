"""Worker supervision: deadline-guarded pipes, restarts with backoff, degradation.

The instance-parallel campaign (:mod:`repro.fuzzer.parallel`) drives engine
workers over pipes.  Before this module, one dead or wedged worker killed
the whole campaign and every worker's progress with it.  The supervisor
turns worker failure into a recoverable event:

- :func:`recv_with_deadline` never blocks forever on a half-dead pipe; it
  raises a *typed* error — :class:`WorkerStallError` (deadline passed),
  :class:`WorkerDeadError` (EOF/broken pipe), :class:`WorkerTaskError`
  (the worker reported an exception of its own).
- :class:`Supervisor.request` wraps every send/recv round trip.  On a stall
  or death it terminates the worker, waits out an exponential backoff
  (:class:`RestartPolicy`), respawns it (resuming from its last checkpoint
  when one is valid), replays the current round's protocol suffix, and
  retries the request — all deterministic on the virtual clock, so a
  recovered campaign is byte-identical to an undisturbed one.
- A worker that exhausts its restart budget is *dropped*, not fatal:
  :class:`WorkerLostError` tells the campaign loop to continue degraded
  with the survivors, and the final result records the degradation.

Worker exceptions (``WorkerTaskError``) are deliberately not retried: they
are deterministic, so a restart would only reproduce them more slowly.
"""

import time

from repro.fuzzer.checkpoint import CheckpointError

# How long (wall seconds) a reply may take before the worker counts as
# stalled.  Virtual-clock rounds complete in milliseconds; two minutes of
# silence means a wedged pipe, not a slow campaign.
DEFAULT_WORKER_TIMEOUT = 120.0


class WorkerError(RuntimeError):
    """Base class for supervised-worker failures."""

    def __init__(self, worker_index, message):
        self.worker_index = worker_index
        super().__init__("instance worker %d %s" % (worker_index, message))


class WorkerStallError(WorkerError):
    """No reply within the deadline: the worker (or its pipe) is wedged."""


class WorkerDeadError(WorkerError):
    """The worker process died (EOF / broken pipe) without reporting."""


class WorkerTaskError(WorkerError):
    """The worker reported an exception of its own (deterministic; no retry)."""


class WorkerProtocolError(WorkerError):
    """The worker replied with an unexpected message tag."""


class WorkerLostError(WorkerError):
    """Restart budget exhausted: the worker is dropped, the campaign degrades."""


def failure_category(exc):
    """Coarse machine-readable category of a worker/job failure.

    Degradation telemetry wants more than an exception string: dashboards
    and the service's ``DegradeReason`` group drops by *why* — a missed
    deadline, a dead process, a deterministic task error, or corrupted
    checkpoint state (the typed :class:`CheckpointError` family).
    """
    if isinstance(exc, CheckpointError):
        return "checkpoint-corrupt"
    if isinstance(exc, WorkerStallError):
        return "deadline"
    if isinstance(exc, WorkerDeadError):
        return "worker-death"
    if isinstance(exc, WorkerTaskError):
        return "task-error"
    return "error"


class RestartPolicy:
    """Exponential backoff with a hard restart budget."""

    __slots__ = ("max_restarts", "backoff_base", "backoff_factor", "backoff_max")

    def __init__(
        self, max_restarts=3, backoff_base=0.1, backoff_factor=2.0, backoff_max=5.0
    ):
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)

    def delay(self, attempt):
        """Backoff before restart ``attempt`` (1-based).

        Attempt 0 (and negatives) and zero-backoff policies cost nothing;
        large attempts saturate at ``backoff_max`` instead of overflowing
        the float exponentiation.
        """
        if attempt <= 0 or self.backoff_base <= 0.0:
            return 0.0
        try:
            raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        except OverflowError:
            # factor ** attempt left float range; the cap saturated long ago.
            return self.backoff_max
        return min(self.backoff_max, raw)

    def __repr__(self):
        return "RestartPolicy(max=%d, backoff=%.2gs x%.2g <= %.2gs)" % (
            self.max_restarts,
            self.backoff_base,
            self.backoff_factor,
            self.backoff_max,
        )


def recv_with_deadline(conn, timeout, worker_index, expected=None):
    """Receive one reply, bounded by ``timeout`` wall seconds.

    ``timeout=None`` means wait forever (the legacy behavior; supervised
    campaigns always pass a deadline).  Raises the typed worker errors
    documented in the module docstring; an ``("error", msg)`` reply becomes
    :class:`WorkerTaskError`.
    """
    if timeout is not None:
        if not conn.poll(timeout):
            raise WorkerStallError(
                worker_index,
                "sent no reply within %.1fs (stalled or wedged pipe)" % timeout,
            )
    try:
        reply = conn.recv()
    except (EOFError, OSError) as exc:
        raise WorkerDeadError(worker_index, "died mid-campaign (%s)" % (exc,))
    if reply[0] == "error":
        raise WorkerTaskError(worker_index, "failed: %s" % (reply[1],))
    if expected is not None and reply[0] != expected:
        raise WorkerProtocolError(
            worker_index, "sent %r, expected %r" % (reply[0], expected)
        )
    return reply


class SupervisedWorker:
    """Parent-side record of one engine worker and its supervision state."""

    __slots__ = (
        "index",
        "proc",
        "conn",
        "alive",
        "restarts",
        "incarnation",
        "resumed_round",
        "history",
        "stage",
        "pending_imports",
        "checkpoint_path",
    )

    def __init__(self, index, checkpoint_path=None):
        self.index = index
        self.proc = None
        self.conn = None
        self.alive = True
        self.restarts = 0
        self.incarnation = 0
        # Rounds already embodied in the worker's state at spawn time
        # (0 = fresh engine; k = resumed from the round-k checkpoint).
        self.resumed_round = 0
        # One (run_target, broadcast_imports) record per *completed* round —
        # the deterministic replay script for checkpointless recovery.
        self.history = []
        # Progress through the current round: 0 = nothing processed,
        # 1 = sync reply merged, 2 = imports applied.
        self.stage = 0
        self.pending_imports = ()
        self.checkpoint_path = checkpoint_path

    def attach(self, proc, conn):
        self.proc = proc
        self.conn = conn

    def terminate(self):
        """Tear down the current process/pipe pair (idempotent)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass
            self.conn = None
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join()
            self.proc = None

    def __repr__(self):
        return "SupervisedWorker(%d, inc=%d, restarts=%d%s)" % (
            self.index,
            self.incarnation,
            self.restarts,
            "" if self.alive else ", DROPPED",
        )


class Supervisor:
    """Restart-with-backoff supervision over a set of workers.

    ``spawn_fn(worker)`` must start a fresh process for ``worker`` (honoring
    ``worker.incarnation`` and its checkpoint) and attach proc/conn;
    ``replay_fn(worker)`` must bring a just-respawned worker back to the
    current protocol position (resume + deterministic replay).  ``stats``
    may provide ``record_restart`` / ``record_degraded`` hooks
    (:class:`repro.fuzzer.stats.CampaignStats` does).
    """

    def __init__(
        self, workers, spawn_fn, replay_fn, policy=None, timeout=None, stats=None
    ):
        self.workers = list(workers)
        self.spawn_fn = spawn_fn
        self.replay_fn = replay_fn
        self.policy = policy if policy is not None else RestartPolicy()
        self.timeout = DEFAULT_WORKER_TIMEOUT if timeout is None else timeout
        self.stats = stats

    def alive(self):
        """Workers still participating in the campaign."""
        return [worker for worker in self.workers if worker.alive]

    def spawn_all(self):
        for worker in self.workers:
            self.spawn_fn(worker)
        return self

    def request(self, worker, command, expected):
        """One supervised round trip; recovers from stalls and deaths.

        Returns the worker's reply.  Raises :class:`WorkerLostError` once
        the restart budget is spent (the worker is already marked dropped)
        and :class:`WorkerTaskError` for deterministic worker exceptions.
        """
        while True:
            try:
                if command is not None:
                    try:
                        worker.conn.send(command)
                    except (OSError, ValueError) as exc:
                        raise WorkerDeadError(
                            worker.index, "pipe closed on send (%s)" % (exc,)
                        )
                return recv_with_deadline(
                    worker.conn, self.timeout, worker.index, expected
                )
            except (WorkerStallError, WorkerDeadError) as exc:
                self._recover(worker, exc)

    def _recover(self, worker, cause):
        """Terminate, back off, respawn, replay — or drop the worker."""
        reason = "%s: %s" % (type(cause).__name__, cause)
        last_exc = cause
        while True:
            worker.terminate()
            if worker.restarts >= self.policy.max_restarts:
                worker.alive = False
                if self.stats is not None:
                    self.stats.record_degraded(
                        worker.index,
                        reason,
                        cause="restart-budget",
                        detail=failure_category(last_exc),
                    )
                raise WorkerLostError(
                    worker.index,
                    "exceeded its restart budget (%d); dropping it (last error: %s)"
                    % (self.policy.max_restarts, reason),
                )
            worker.restarts += 1
            delay = self.policy.delay(worker.restarts)
            if self.stats is not None:
                self.stats.record_restart(worker.index, worker.restarts, reason, delay)
            if delay > 0:
                time.sleep(delay)
            worker.incarnation += 1
            try:
                self.spawn_fn(worker)
                self.replay_fn(worker)
                return
            except (WorkerStallError, WorkerDeadError) as exc:
                # The replacement died too (e.g. a fault targeting the new
                # incarnation); charge another restart and keep going.
                reason = "%s: %s" % (type(exc).__name__, exc)
                last_exc = exc

    def terminate_all(self):
        for worker in self.workers:
            worker.terminate()
