"""Deterministic fault injection for campaign-resilience testing.

Real campaigns die in unglamorous ways: a worker is OOM-killed mid-round, a
sync barrier wedges, a checkpoint write is torn, a pipe message evaporates.
This harness injects exactly those faults at *deterministic* points of the
instance-campaign protocol so tier-1 tests can prove every recovery path in
:mod:`repro.fuzzer.supervisor` rather than hope for it.

Faults are described by a compact spec, carried either programmatically
(:func:`install` / :func:`injected`) or through the ``REPRO_FAULTS``
environment variable (which crosses ``fork`` *and* ``spawn`` boundaries
into worker processes):

    spec   := fault ("," fault)*
    fault  := action "@" worker "." round ["." incarnation] (":" key "=" value)*
    action := "kill" | "stall" | "drop" | "truncate"
            | "torn-write" | "corrupt-file"
            | "journal-torn" | "orch-kill" | "job-drop" | "heartbeat-stall"
            | "lease-expire" | "clock-skew"

Examples::

    kill@1.2              worker 1 dies (SIGKILL-style _exit) at sync round 2
    stall@0.1:secs=30     worker 0 wedges 30 s before its round-1 reply
    drop@1.2              worker 1 silently drops its round-2 sync reply
    truncate@1.1:keep=32  worker 1's round-1 checkpoint is torn to 32 bytes
    torn-write@0.3        worker 0's 3rd store artifact is torn mid-write
    corrupt-file@0.5      worker 0's 5th store artifact gets its bytes flipped
    journal-torn@0.4      the orchestrator's 4th journal record is torn
    orch-kill@0.7         the orchestrator dies right after journal commit 7
    job-drop@2.3          job 2's 3rd worker message silently evaporates
    heartbeat-stall@1.2:secs=30   job 1 wedges 30 s before its 2nd message
    lease-expire@0.2      service 0's 2nd lease renewal misses its deadline
    clock-skew@1.0:secs=45        service 1's lease clock runs 45 s fast

For the store actions the "round" coordinate is the worker's *n-th
committed artifact write* (see :class:`repro.fuzzer.store.CampaignStore`) —
store writes stream continuously, so sync rounds are the wrong clock for
them.

The service actions reuse that same write-counter idea (the spec string
crosses ``fork`` and ``spawn`` boundaries through ``REPRO_FAULTS``
unchanged):

- ``journal-torn`` / ``orch-kill`` fire inside the *orchestrator* process
  (:mod:`repro.service.journal`), keyed on its n-th committed journal
  record; the "worker" coordinate is the service index (0 by convention),
  and the "incarnation" is the service epoch (0 = first life, so a
  restarted orchestrator runs clean unless a fault targets its epoch).
- ``job-drop`` / ``heartbeat-stall`` fire inside a *job worker* process
  (:mod:`repro.service.worker`), keyed on the job's submission index and
  its n-th outbound pipe message (heartbeats and the final result alike);
  the incarnation is the job attempt, so a retried job runs clean by
  default.
- ``lease-expire`` / ``clock-skew`` fire at a service actor's *lease*
  clock (:mod:`repro.service.lease`): the "worker" coordinate is the
  service index, the round is the n-th renewal attempt (0 fires at
  acquisition itself), and the incarnation selects the fencing epoch
  (0 = the root's first-ever holder).  ``lease-expire`` makes that renewal
  silently miss its deadline — the on-disk expiry is rewritten into the
  past and the in-memory lease stops renewing, so a standby actor
  observes an expired lease and steals it while the old holder still
  believes it is alive (the paused-VM / network-partition shape).
  ``clock-skew:secs=N`` offsets the actor's lease clock by N seconds
  from acquisition onward.

``incarnation`` defaults to 0, so a fault fires only in a worker's *first*
life — its supervised replacement (incarnation 1, 2, ...) runs clean unless
a fault explicitly targets it.  That is what makes kill-and-recover tests
deterministic instead of kill loops.
"""

import os
import time

ENV_VAR = "REPRO_FAULTS"

# Exit code of a fault-killed worker; distinctive in supervisor logs.
KILLED_EXIT_CODE = 86

_ACTIONS = (
    "kill",
    "stall",
    "drop",
    "truncate",
    "torn-write",
    "corrupt-file",
    "journal-torn",
    "orch-kill",
    "job-drop",
    "heartbeat-stall",
    "lease-expire",
    "clock-skew",
)

# Actions that damage a just-committed store artifact (site "store").
_STORE_ACTIONS = ("torn-write", "corrupt-file")

# Actions that fire at the orchestrator's journal-commit clock.
_JOURNAL_ACTIONS = ("journal-torn", "orch-kill")

# Actions that fire at a job worker's outbound-message clock.
_JOBMSG_ACTIONS = ("job-drop", "heartbeat-stall")

# Actions that fire at a service actor's lease clock.
_LEASE_ACTIONS = ("lease-expire", "clock-skew")

_INSTALLED = None


class FaultSpecError(ValueError):
    """A fault spec string that does not parse."""


class Fault:
    """One injected fault, pinned to (action, worker, round, incarnation)."""

    __slots__ = ("action", "worker", "round_no", "incarnation", "params")

    def __init__(self, action, worker, round_no, incarnation=0, params=None):
        if action not in _ACTIONS:
            raise FaultSpecError("unknown fault action %r" % (action,))
        self.action = action
        self.worker = int(worker)
        self.round_no = int(round_no)
        self.incarnation = int(incarnation)
        self.params = dict(params or {})

    def site(self):
        """Protocol site the fault fires at."""
        if self.action == "truncate":
            return "checkpoint"
        if self.action in _STORE_ACTIONS:
            return "store"
        if self.action in _JOURNAL_ACTIONS:
            return "journal"
        if self.action in _JOBMSG_ACTIONS:
            return "jobmsg"
        if self.action in _LEASE_ACTIONS:
            return "lease"
        return "sync"

    def __repr__(self):
        return "Fault(%s@%d.%d.%d%s)" % (
            self.action,
            self.worker,
            self.round_no,
            self.incarnation,
            "".join(":%s=%s" % kv for kv in sorted(self.params.items())),
        )


def parse_faults(spec):
    """Parse a spec string into a list of :class:`Fault`."""
    faults = []
    for raw in str(spec).split(","):
        raw = raw.strip()
        if not raw:
            continue
        head, _, tail = raw.partition(":")
        action, at, location = head.partition("@")
        if not at or not location:
            raise FaultSpecError("fault %r lacks an @worker.round location" % raw)
        parts = location.split(".")
        if len(parts) not in (2, 3):
            raise FaultSpecError(
                "fault location %r must be worker.round[.incarnation]" % location
            )
        params = {}
        if tail:
            for pair in tail.split(":"):
                key, eq, value = pair.partition("=")
                if not eq:
                    raise FaultSpecError("fault param %r is not key=value" % pair)
                params[key.strip()] = value.strip()
        try:
            faults.append(
                Fault(action.strip(), *[int(p) for p in parts], params=params)
            )
        except ValueError as exc:
            raise FaultSpecError("fault %r: %s" % (raw, exc))
    return faults


class FaultPlan:
    """The active set of faults; workers query it at protocol sites."""

    __slots__ = ("faults",)

    def __init__(self, faults=()):
        self.faults = list(faults)

    def match(self, site, worker, round_no, incarnation):
        for fault in self.faults:
            if (
                fault.site() == site
                and fault.worker == worker
                and fault.round_no == round_no
                and fault.incarnation == incarnation
            ):
                return fault
        return None

    def __bool__(self):
        return bool(self.faults)

    def __repr__(self):
        return "FaultPlan(%r)" % (self.faults,)


def install(spec):
    """Activate a fault plan for this process tree.

    Sets both the in-process plan (inherited by forked workers) and the
    ``REPRO_FAULTS`` environment variable (inherited by spawned ones).
    """
    global _INSTALLED
    faults = parse_faults(spec) if isinstance(spec, str) else list(spec)
    _INSTALLED = FaultPlan(faults)
    os.environ[ENV_VAR] = (
        spec
        if isinstance(spec, str)
        else ",".join(
            "%s@%d.%d.%d%s"
            % (
                f.action,
                f.worker,
                f.round_no,
                f.incarnation,
                "".join(":%s=%s" % kv for kv in sorted(f.params.items())),
            )
            for f in faults
        )
    )
    return _INSTALLED


def clear():
    """Deactivate fault injection."""
    global _INSTALLED
    _INSTALLED = None
    os.environ.pop(ENV_VAR, None)


class injected:
    """Context manager: ``with injected("kill@1.2"): run_campaign(...)``."""

    def __init__(self, spec):
        self.spec = spec

    def __enter__(self):
        return install(self.spec)

    def __exit__(self, *exc_info):
        clear()
        return False


def active_plan():
    """The plan workers consult: installed plan, else ``REPRO_FAULTS``."""
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return FaultPlan(())
    return FaultPlan(parse_faults(spec))


# -- firing (called from inside worker processes) ------------------------------


def fire_sync_fault(fault):
    """Fire a sync-site fault; returns True if the reply must be dropped."""
    if fault.action == "kill":
        # Die the way an OOM kill does: no cleanup, no exception, no reply.
        os._exit(KILLED_EXIT_CODE)
    if fault.action == "stall":
        time.sleep(float(fault.params.get("secs", 3600)))
        return False
    if fault.action == "drop":
        return True
    return False


def fire_checkpoint_fault(fault, path):
    """Fire a checkpoint-site fault: tear the just-written file."""
    if fault.action == "truncate":
        keep = int(fault.params.get("keep", 24))
        with open(path, "r+b") as handle:
            handle.truncate(keep)


def fire_store_fault(fault, path):
    """Fire a store-site fault: damage the artifact just committed at ``path``.

    ``torn-write`` simulates a rename that beat its data to the platter
    (power loss between write and fsync): the file keeps only its first
    ``keep`` bytes (default 8, 0 tears it to empty).  ``corrupt-file``
    simulates silent media corruption: every byte is complemented, so the
    length is right but the content hash is not.  Both must land the file
    in ``quarantine/`` on the next tolerant scan.
    """
    if fault.action == "torn-write":
        keep = int(fault.params.get("keep", 8))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    elif fault.action == "corrupt-file":
        with open(path, "r+b") as handle:
            data = handle.read()
            handle.seek(0)
            handle.write(bytes(b ^ 0xFF for b in data))
            handle.truncate(len(data))


def fire_journal_fault(fault, path):
    """Fire a journal-site fault on the record just committed at ``path``.

    ``journal-torn`` tears the record to its first ``keep`` bytes (default
    8) — the rename-beat-the-data power-loss shape the journal's tolerant
    recovery scan must quarantine.  ``orch-kill`` kills the orchestrator the
    way an OOM kill does, *after* the record is durably committed: the
    restarted service must resume every in-flight job from the journal plus
    the per-job durable state, with zero lost jobs.
    """
    if fault.action == "journal-torn":
        keep = int(fault.params.get("keep", 8))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    elif fault.action == "orch-kill":
        os._exit(KILLED_EXIT_CODE)


def fire_jobmsg_fault(fault):
    """Fire a job-message fault; returns True if the message must be dropped.

    ``heartbeat-stall`` wedges the job worker ``secs`` seconds (default
    3600) before it sends — long enough that the orchestrator's heartbeat
    deadline fires first.  ``job-drop`` silently swallows the message
    (heartbeat or final result alike), the way a half-dead pipe does.
    """
    if fault.action == "heartbeat-stall":
        time.sleep(float(fault.params.get("secs", 3600)))
        return False
    if fault.action == "job-drop":
        return True
    return False


def fire_lease_fault(fault, lease):
    """Fire a lease-site fault against a :class:`repro.service.lease.ServiceLease`.

    ``lease-expire`` rewrites the on-disk lock's expiry into the past and
    tells the lease to stop renewing — from the outside the holder looks
    dead, from the inside it still believes it holds the root until its
    next :meth:`check`.  ``clock-skew`` offsets the lease's notion of
    "now" by ``secs`` (default 60, may be negative) from this point on.
    Returns True if the renewal must be skipped.
    """
    if fault.action == "lease-expire":
        lease.force_expire()
        return True
    if fault.action == "clock-skew":
        lease.skew += float(fault.params.get("secs", 60))
        return False
    return False
