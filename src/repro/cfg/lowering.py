"""AST -> CFG lowering.

Short-circuit operators (``&&``, ``||``) and loop/if statements lower to
genuine control flow, so the resulting CFGs exhibit the branch structure the
Ball-Larus pass enumerates.  Unreachable blocks produced by early returns,
``break``/``continue``, or diverging branches are pruned and blocks are
renumbered densely before the CFG is returned.
"""

from repro.cfg.instructions import (
    BIN,
    BINOPS,
    BR,
    BUILTIN,
    CALL,
    CONST,
    JMP,
    LOAD,
    MOV,
    RET,
    STORE,
    STR,
    UN,
    UNOPS,
)
from repro.cfg.graph import FunctionCFG, remap_targets
from repro.cfg.program import ProgramCFG
from repro.lang import ast_nodes as ast
from repro.lang.builtins_spec import BUILTIN_CODES


def lower_program(program_ast, source_name="<program>"):
    """Lower a checked :class:`ast.Program` into a :class:`ProgramCFG`."""
    func_index = {f.name: i for i, f in enumerate(program_ast.funcs)}
    strings = _StringPool()
    funcs = []
    for funcdef in program_ast.funcs:
        lowerer = _FuncLowerer(funcdef, func_index, strings)
        funcs.append(lowerer.run())
    return ProgramCFG(funcs, strings.values, source_name)


class _StringPool:
    """Deduplicating pool of byte-string constants."""

    def __init__(self):
        self.values = []
        self._index = {}

    def intern(self, value):
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.values)
            self.values.append(value)
            self._index[value] = idx
        return idx


class _FuncLowerer:
    def __init__(self, funcdef, func_index, strings):
        self._funcdef = funcdef
        self._func_index = func_index
        self._strings = strings
        self._cfg = FunctionCFG(
            funcdef.name, func_index[funcdef.name], len(funcdef.params)
        )
        self._scopes = [
            {name: reg for reg, name in enumerate(funcdef.params)}
        ]
        self._loops = []  # (continue_target_id, break_target_id)

    def run(self):
        entry = self._cfg.new_block()
        end = self._lower_block(self._funcdef.body, entry, new_scope=False)
        if end is not None and not end.is_terminated():
            end.term = (RET, -1)
        self._terminate_stragglers()
        _prune_unreachable(self._cfg)
        self._cfg.validate()
        return self._cfg

    def _terminate_stragglers(self):
        # Dead blocks created after diverging statements may remain open;
        # close them so pruning can treat the CFG uniformly.
        for block in self._cfg.blocks:
            if not block.is_terminated():
                block.term = (RET, -1)

    # -- scope -------------------------------------------------------------

    def _lookup(self, name):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise KeyError(name)  # pragma: no cover - sema guarantees declaration

    # -- statements ----------------------------------------------------------

    def _lower_block(self, block_ast, cur, new_scope=True):
        """Lower a statement list into ``cur``; return the open exit block.

        Returns None when control diverges (every path returned/broke).
        """
        if new_scope:
            self._scopes.append({})
        for stmt in block_ast.stmts:
            cur = self._lower_stmt(stmt, cur)
            if cur is None:
                break
        if new_scope:
            self._scopes.pop()
        return cur

    def _lower_stmt(self, stmt, cur):
        if isinstance(stmt, ast.VarDecl):
            value, cur = self._lower_expr(stmt.init, cur)
            reg = self._cfg.new_reg()
            cur.instrs.append((MOV, reg, value))
            self._scopes[-1][stmt.name] = reg
            return cur
        if isinstance(stmt, ast.Assign):
            value, cur = self._lower_expr(stmt.value, cur)
            cur.instrs.append((MOV, self._lookup(stmt.name), value))
            return cur
        if isinstance(stmt, ast.IndexAssign):
            arr, cur = self._lower_expr(stmt.array, cur)
            idx, cur = self._lower_expr(stmt.index, cur)
            value, cur = self._lower_expr(stmt.value, cur)
            cur.instrs.append((STORE, arr, idx, value, stmt.line))
            return cur
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, cur)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, cur)
        if isinstance(stmt, ast.Break):
            cur.term = (JMP, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cur.term = (JMP, self._loops[-1][0])
            return None
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                cur.term = (RET, -1)
            else:
                value, cur = self._lower_expr(stmt.value, cur)
                cur.term = (RET, value)
            return None
        if isinstance(stmt, ast.ExprStmt):
            _, cur = self._lower_expr(stmt.expr, cur)
            return cur
        raise AssertionError("unknown statement %r" % stmt)

    def _lower_if(self, stmt, cur):
        then_block = self._cfg.new_block()
        else_block = self._cfg.new_block() if stmt.else_block is not None else None
        join = self._cfg.new_block()
        self._lower_cond(stmt.cond, cur, then_block.id, (else_block or join).id)
        then_end = self._lower_block(stmt.then_block, then_block)
        if then_end is not None:
            then_end.term = (JMP, join.id)
        if else_block is not None:
            else_end = self._lower_block(stmt.else_block, else_block)
            if else_end is not None:
                else_end.term = (JMP, join.id)
        return join

    def _lower_while(self, stmt, cur):
        header = self._cfg.new_block()
        body = self._cfg.new_block()
        exit_block = self._cfg.new_block()
        cur.term = (JMP, header.id)
        self._lower_cond(stmt.cond, header, body.id, exit_block.id)
        self._loops.append((header.id, exit_block.id))
        body_end = self._lower_block(stmt.body, body)
        self._loops.pop()
        if body_end is not None:
            body_end.term = (JMP, header.id)  # the loop back edge
        return exit_block

    def _lower_for(self, stmt, cur):
        self._scopes.append({})
        if stmt.init is not None:
            cur = self._lower_stmt(stmt.init, cur)
        header = self._cfg.new_block()
        body = self._cfg.new_block()
        step = self._cfg.new_block()
        exit_block = self._cfg.new_block()
        cur.term = (JMP, header.id)
        if stmt.cond is not None:
            self._lower_cond(stmt.cond, header, body.id, exit_block.id)
        else:
            header.term = (JMP, body.id)
        self._loops.append((step.id, exit_block.id))
        body_end = self._lower_block(stmt.body, body)
        self._loops.pop()
        if body_end is not None:
            body_end.term = (JMP, step.id)
        step_end = step
        if stmt.step is not None:
            step_end = self._lower_stmt(stmt.step, step)
        if step_end is not None:
            step_end.term = (JMP, header.id)  # the loop back edge
        self._scopes.pop()
        return exit_block

    # -- conditions ----------------------------------------------------------

    def _lower_cond(self, expr, cur, true_id, false_id):
        """Lower ``expr`` as a branch condition out of ``cur``."""
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            mid = self._cfg.new_block()
            self._lower_cond(expr.left, cur, mid.id, false_id)
            self._lower_cond(expr.right, mid, true_id, false_id)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            mid = self._cfg.new_block()
            self._lower_cond(expr.left, cur, true_id, mid.id)
            self._lower_cond(expr.right, mid, true_id, false_id)
            return
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            self._lower_cond(expr.operand, cur, false_id, true_id)
            return
        value, cur = self._lower_expr(expr, cur)
        cur.term = (BR, value, true_id, false_id)

    # -- expressions ---------------------------------------------------------

    def _lower_expr(self, expr, cur):
        """Lower ``expr``; return (result_register, open_block)."""
        if isinstance(expr, ast.IntLit):
            reg = self._cfg.new_reg()
            cur.instrs.append((CONST, reg, expr.value))
            return reg, cur
        if isinstance(expr, ast.StrLit):
            reg = self._cfg.new_reg()
            cur.instrs.append((STR, reg, self._strings.intern(expr.value)))
            return reg, cur
        if isinstance(expr, ast.Name):
            return self._lookup(expr.name), cur
        if isinstance(expr, ast.UnOp):
            operand, cur = self._lower_expr(expr.operand, cur)
            reg = self._cfg.new_reg()
            cur.instrs.append((UN, UNOPS[expr.op], reg, operand))
            return reg, cur
        if isinstance(expr, ast.BinOp):
            if expr.op in ("&&", "||"):
                return self._lower_shortcircuit(expr, cur)
            left, cur = self._lower_expr(expr.left, cur)
            right, cur = self._lower_expr(expr.right, cur)
            reg = self._cfg.new_reg()
            cur.instrs.append((BIN, BINOPS[expr.op], reg, left, right, expr.line))
            return reg, cur
        if isinstance(expr, ast.Index):
            arr, cur = self._lower_expr(expr.array, cur)
            idx, cur = self._lower_expr(expr.index, cur)
            reg = self._cfg.new_reg()
            cur.instrs.append((LOAD, reg, arr, idx, expr.line))
            return reg, cur
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, cur)
        raise AssertionError("unknown expression %r" % expr)

    def _lower_shortcircuit(self, expr, cur):
        """Materialize ``a && b`` / ``a || b`` as 0/1 through control flow."""
        result = self._cfg.new_reg()
        true_block = self._cfg.new_block()
        false_block = self._cfg.new_block()
        join = self._cfg.new_block()
        self._lower_cond(expr, cur, true_block.id, false_block.id)
        true_block.instrs.append((CONST, result, 1))
        true_block.term = (JMP, join.id)
        false_block.instrs.append((CONST, result, 0))
        false_block.term = (JMP, join.id)
        return result, join

    def _lower_call(self, expr, cur):
        arg_regs = []
        for arg in expr.args:
            reg, cur = self._lower_expr(arg, cur)
            arg_regs.append(reg)
        dst = self._cfg.new_reg()
        if expr.callee in BUILTIN_CODES:
            cur.instrs.append(
                (BUILTIN, dst, BUILTIN_CODES[expr.callee], tuple(arg_regs), expr.line)
            )
        else:
            cur.instrs.append(
                (CALL, dst, self._func_index[expr.callee], tuple(arg_regs), expr.line)
            )
        return dst, cur


def _prune_unreachable(cfg):
    """Drop blocks unreachable from the entry and renumber densely."""
    reachable = set()
    stack = [0]
    while stack:
        block_id = stack.pop()
        if block_id in reachable:
            continue
        reachable.add(block_id)
        stack.extend(cfg.blocks[block_id].successors())
    keep = [b for b in cfg.blocks if b.id in reachable]
    mapping = {}
    for new_id, block in enumerate(keep):
        mapping[block.id] = new_id
    for block in keep:
        block.id = mapping[block.id]
    cfg.blocks = keep
    remap_targets(cfg, mapping)
