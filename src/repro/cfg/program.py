"""Linked multi-function program units."""


class ProgramCFG:
    """A compiled MiniC program: function CFGs + the string-constant pool.

    ``funcs`` is indexed by function index (as used by CALL instructions);
    ``main_index`` designates the fuzzing entry point ``main(input)``.
    """

    __slots__ = ("funcs", "func_index", "strings", "main_index", "source_name")

    def __init__(self, funcs, strings, source_name="<program>"):
        self.funcs = funcs
        self.func_index = {f.name: f.index for f in funcs}
        self.strings = strings
        self.main_index = self.func_index.get("main")
        self.source_name = source_name

    def func(self, name):
        """Look up a function CFG by name (KeyError if absent)."""
        return self.funcs[self.func_index[name]]

    def validate(self):
        """Validate every function; raise ValueError on a malformed CFG."""
        for func in self.funcs:
            func.validate()
        if self.main_index is None:
            raise ValueError("%s: no main function" % self.source_name)
        main = self.funcs[self.main_index]
        if main.nparams != 1:
            raise ValueError(
                "%s: main must take exactly one parameter (the input)"
                % self.source_name
            )

    def all_edges(self):
        """Every intra-function edge as (func_index, src_block, dst_block)."""
        result = []
        for func in self.funcs:
            for src, dst in func.edges():
                result.append((func.index, src, dst))
        return result

    def stats(self):
        """Summary dict: functions, blocks, edges, registers."""
        return {
            "functions": len(self.funcs),
            "blocks": sum(len(f.blocks) for f in self.funcs),
            "edges": len(self.all_edges()),
            "registers": sum(f.nregs for f in self.funcs),
        }

    def pretty(self):
        """Listing of the whole program."""
        return "\n\n".join(f.pretty() for f in self.funcs)
