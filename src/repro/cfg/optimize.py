"""Light middle-end cleanups run before instrumentation.

Mirrors the paper's setup, where the Ball-Larus pass runs *after* the
compiler's optimization pipeline: instrumentation sees the cleaned CFG.

Passes:

- constant folding of BIN/UN over locally known constants (per block);
- jump threading: empty blocks whose only job is ``jmp`` are bypassed;
- unreachable-block pruning + dense renumbering.

All passes preserve observable behaviour (including trap sites, which are
never folded away).
"""

from repro.analysis.foldops import (
    FOLDABLE_BIN as _FOLDABLE_BIN,
    FOLDABLE_UN as _FOLDABLE_UN,
    fold_binop,
    fold_unop,
)
from repro.cfg.instructions import (
    BIN,
    BR,
    CONST,
    JMP,
    MOV,
    UN,
    instr_def,
)
from repro.cfg.graph import remap_targets


def optimize_program(program):
    """Run all cleanup passes over every function of ``program`` in place."""
    for func in program.funcs:
        fold_constants(func)
        thread_jumps(func)
        prune_unreachable(func)


def fold_constants(cfg):
    """Per-block forward constant folding (conservative, no cross-block info).

    Division and modulo are never folded: a constant zero divisor must still
    trap at run time with its original site.  Shifts are folded only for
    in-range shift amounts.
    """
    for block in cfg.blocks:
        known = {}
        new_instrs = []
        for instr in block.instrs:
            op = instr[0]
            if op == CONST:
                known[instr[1]] = instr[2]
                new_instrs.append(instr)
                continue
            if op == MOV:
                if instr[2] in known:
                    known[instr[1]] = known[instr[2]]
                    new_instrs.append((CONST, instr[1], known[instr[2]]))
                    continue
                known.pop(instr[1], None)
                new_instrs.append(instr)
                continue
            if op == BIN and instr[3] in known and instr[4] in known:
                folded = fold_binop(instr[1], known[instr[3]], known[instr[4]])
                if folded is not None:
                    known[instr[2]] = folded
                    new_instrs.append((CONST, instr[2], folded))
                    continue
                known.pop(instr[2], None)
                new_instrs.append(instr)
                continue
            if op == UN and instr[3] in known:
                folded = fold_unop(instr[1], known[instr[3]])
                known[instr[2]] = folded
                new_instrs.append((CONST, instr[2], folded))
                continue
            dst = instr_def(instr)
            if dst is not None:
                known.pop(dst, None)
            new_instrs.append(instr)
        block.instrs = new_instrs


def thread_jumps(cfg):
    """Bypass empty blocks whose terminator is an unconditional jump.

    A block is bypassable when it has no instructions and ends in ``jmp``.
    Chains are followed to a fixed point (with cycle protection: a
    self-reaching chain, i.e. an empty infinite loop, is left alone).  A
    ``br`` whose resolved true and false targets coincide degenerates into a
    ``jmp`` — reading the (side-effect-free) condition register is the only
    thing dropped — which lets later pruning and the Ball-Larus DAG see one
    edge instead of a fake two-way branch.
    """
    forward = {}
    for block in cfg.blocks:
        if not block.instrs and block.term is not None and block.term[0] == JMP:
            forward[block.id] = block.term[1]

    def resolve(block_id):
        seen = set()
        while block_id in forward and block_id not in seen:
            seen.add(block_id)
            block_id = forward[block_id]
        return block_id

    for block in cfg.blocks:
        term = block.term
        if term is None:
            continue
        if term[0] == JMP:
            block.term = (JMP, resolve(term[1]))
        elif term[0] == BR:
            true_target = resolve(term[2])
            false_target = resolve(term[3])
            if true_target == false_target:
                block.term = (JMP, true_target)
            else:
                block.term = (BR, term[1], true_target, false_target)


def prune_unreachable(cfg):
    """Drop unreachable blocks and renumber the survivors densely."""
    reachable = set()
    stack = [0]
    while stack:
        block_id = stack.pop()
        if block_id in reachable:
            continue
        reachable.add(block_id)
        stack.extend(cfg.blocks[block_id].successors())
    keep = [b for b in cfg.blocks if b.id in reachable]
    mapping = {block.id: new_id for new_id, block in enumerate(keep)}
    for block in keep:
        block.id = mapping[block.id]
    cfg.blocks = keep
    remap_targets(cfg, mapping)
