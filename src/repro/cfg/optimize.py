"""Light middle-end cleanups run before instrumentation.

Mirrors the paper's setup, where the Ball-Larus pass runs *after* the
compiler's optimization pipeline: instrumentation sees the cleaned CFG.

Passes:

- constant folding of BIN/UN over locally known constants (per block);
- jump threading: empty blocks whose only job is ``jmp`` are bypassed;
- unreachable-block pruning + dense renumbering.

All passes preserve observable behaviour (including trap sites, which are
never folded away).
"""

from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    CONST,
    JMP,
    LOAD,
    MOV,
    STR,
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_XOR,
    UN,
    OP_BNOT,
    OP_LNOT,
    OP_NEG,
)
from repro.cfg.graph import remap_targets
from repro.runtime.values import wrap_int

_FOLDABLE_BIN = {
    OP_ADD: lambda a, b: a + b,
    OP_SUB: lambda a, b: a - b,
    OP_MUL: lambda a, b: a * b,
    OP_LT: lambda a, b: int(a < b),
    OP_LE: lambda a, b: int(a <= b),
    OP_GT: lambda a, b: int(a > b),
    OP_GE: lambda a, b: int(a >= b),
    OP_EQ: lambda a, b: int(a == b),
    OP_NE: lambda a, b: int(a != b),
    OP_AND: lambda a, b: a & b,
    OP_OR: lambda a, b: a | b,
    OP_XOR: lambda a, b: a ^ b,
}

_FOLDABLE_UN = {
    OP_NEG: lambda a: -a,
    OP_LNOT: lambda a: int(a == 0),
    OP_BNOT: lambda a: ~a,
}


def optimize_program(program):
    """Run all cleanup passes over every function of ``program`` in place."""
    for func in program.funcs:
        fold_constants(func)
        thread_jumps(func)
        prune_unreachable(func)


def fold_constants(cfg):
    """Per-block forward constant folding (conservative, no cross-block info).

    Division and modulo are never folded: a constant zero divisor must still
    trap at run time with its original site.  Shifts are folded only for
    in-range shift amounts.
    """
    for block in cfg.blocks:
        known = {}
        new_instrs = []
        for instr in block.instrs:
            op = instr[0]
            if op == CONST:
                known[instr[1]] = instr[2]
                new_instrs.append(instr)
                continue
            if op == MOV:
                if instr[2] in known:
                    known[instr[1]] = known[instr[2]]
                    new_instrs.append((CONST, instr[1], known[instr[2]]))
                    continue
                known.pop(instr[1], None)
                new_instrs.append(instr)
                continue
            if op == BIN and instr[3] in known and instr[4] in known:
                folded = _fold_bin(instr[1], known[instr[3]], known[instr[4]])
                if folded is not None:
                    known[instr[2]] = folded
                    new_instrs.append((CONST, instr[2], folded))
                    continue
                known.pop(instr[2], None)
                new_instrs.append(instr)
                continue
            if op == UN and instr[3] in known:
                folded = wrap_int(_FOLDABLE_UN[instr[1]](known[instr[3]]))
                known[instr[2]] = folded
                new_instrs.append((CONST, instr[2], folded))
                continue
            dst = _dest_register(instr)
            if dst is not None:
                known.pop(dst, None)
            new_instrs.append(instr)
        block.instrs = new_instrs


def _fold_bin(binop, a, b):
    if binop in (OP_DIV, OP_MOD):
        return None
    if binop in (OP_SHL, OP_SHR):
        if not 0 <= b < 64:
            return None
        return wrap_int(a << b) if binop == OP_SHL else wrap_int(a >> b)
    return wrap_int(_FOLDABLE_BIN[binop](a, b))


# LOAD/CALL/BUILTIN/STR write instr[1]; BIN/UN write instr[2]; STORE none.
_DEST_AT_1 = frozenset([CONST, MOV, LOAD, CALL, BUILTIN, STR])
_DEST_AT_2 = frozenset([BIN, UN])


def _dest_register(instr):
    """The register an instruction writes, or None (STORE writes memory)."""
    op = instr[0]
    if op in _DEST_AT_1:
        return instr[1]
    if op in _DEST_AT_2:
        return instr[2]
    return None


def thread_jumps(cfg):
    """Bypass empty blocks whose terminator is an unconditional jump.

    A block is bypassable when it has no instructions and ends in ``jmp``.
    Chains are followed to a fixed point (with cycle protection: a
    self-reaching chain, i.e. an empty infinite loop, is left alone).
    """
    forward = {}
    for block in cfg.blocks:
        if not block.instrs and block.term is not None and block.term[0] == JMP:
            forward[block.id] = block.term[1]

    def resolve(block_id):
        seen = set()
        while block_id in forward and block_id not in seen:
            seen.add(block_id)
            block_id = forward[block_id]
        return block_id

    for block in cfg.blocks:
        term = block.term
        if term is None:
            continue
        if term[0] == JMP:
            block.term = (JMP, resolve(term[1]))
        elif term[0] == BR:
            block.term = (BR, term[1], resolve(term[2]), resolve(term[3]))


def prune_unreachable(cfg):
    """Drop unreachable blocks and renumber the survivors densely."""
    reachable = set()
    stack = [0]
    while stack:
        block_id = stack.pop()
        if block_id in reachable:
            continue
        reachable.add(block_id)
        stack.extend(cfg.blocks[block_id].successors())
    keep = [b for b in cfg.blocks if b.id in reachable]
    mapping = {block.id: new_id for new_id, block in enumerate(keep)}
    for block in keep:
        block.id = mapping[block.id]
    cfg.blocks = keep
    remap_targets(cfg, mapping)
