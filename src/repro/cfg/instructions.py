"""Register-IR instruction encoding.

Instructions are plain tuples headed by a small integer opcode so the VM can
dispatch on ``instr[0]`` without attribute lookups.  Layouts::

    (CONST, dst, imm)
    (MOV, dst, src)
    (BIN, binop, dst, a, b, line)      binop in BINOPS (div/mod/shift can trap)
    (UN, unop, dst, a)                 unop in UNOPS
    (LOAD, dst, arr, idx, line)        bounds-checked array read
    (STORE, arr, idx, src, line)       bounds-checked array write
    (CALL, dst, func_index, args, line)      args is a tuple of regs
    (BUILTIN, dst, builtin_code, args, line)
    (STR, dst, string_index)           string-pool constant -> array handle

Terminators (stored separately on each block)::

    (JMP, target)
    (BR, cond_reg, true_target, false_target)
    (RET, src_reg)                     src_reg == -1 means "return 0"

``line`` operands are 1-based source lines; they identify potential crash
sites (ground-truth bug identity) and call sites (stack traces).
"""

# Opcodes.
CONST = 0
MOV = 1
BIN = 2
UN = 3
LOAD = 4
STORE = 5
CALL = 6
BUILTIN = 7
STR = 8

# Terminator opcodes.
JMP = 0
BR = 1
RET = 2

# Binary operators (the VM indexes handlers by these).
OP_ADD = 0
OP_SUB = 1
OP_MUL = 2
OP_DIV = 3
OP_MOD = 4
OP_LT = 5
OP_LE = 6
OP_GT = 7
OP_GE = 8
OP_EQ = 9
OP_NE = 10
OP_AND = 11
OP_OR = 12
OP_XOR = 13
OP_SHL = 14
OP_SHR = 15

BINOPS = {
    "+": OP_ADD,
    "-": OP_SUB,
    "*": OP_MUL,
    "/": OP_DIV,
    "%": OP_MOD,
    "<": OP_LT,
    "<=": OP_LE,
    ">": OP_GT,
    ">=": OP_GE,
    "==": OP_EQ,
    "!=": OP_NE,
    "&": OP_AND,
    "|": OP_OR,
    "^": OP_XOR,
    "<<": OP_SHL,
    ">>": OP_SHR,
}

# Comparison subset: operand pairs of these are harvested by cmplog.
COMPARISON_OPS = frozenset([OP_LT, OP_LE, OP_GT, OP_GE, OP_EQ, OP_NE])

# Unary operators.
OP_NEG = 0
OP_LNOT = 1
OP_BNOT = 2

UNOPS = {"-": OP_NEG, "!": OP_LNOT, "~": OP_BNOT}

_OPCODE_NAMES = {
    CONST: "const",
    MOV: "mov",
    BIN: "bin",
    UN: "un",
    LOAD: "load",
    STORE: "store",
    CALL: "call",
    BUILTIN: "builtin",
    STR: "str",
}

# Expected tuple length per opcode (the encoding is positional).
INSTR_ARITY = {
    CONST: 3,
    MOV: 3,
    BIN: 6,
    UN: 4,
    LOAD: 5,
    STORE: 5,
    CALL: 5,
    BUILTIN: 5,
    STR: 3,
}

# LOAD/CALL/BUILTIN/STR/CONST/MOV write instr[1]; BIN/UN write instr[2];
# STORE writes memory, not a register.
_DEST_AT_1 = frozenset([CONST, MOV, LOAD, CALL, BUILTIN, STR])
_DEST_AT_2 = frozenset([BIN, UN])


def instr_def(instr):
    """The register an instruction writes, or None (STORE writes memory)."""
    op = instr[0]
    if op in _DEST_AT_1:
        return instr[1]
    if op in _DEST_AT_2:
        return instr[2]
    return None


def instr_uses(instr):
    """The registers an instruction reads, as a tuple (may repeat)."""
    op = instr[0]
    if op == MOV:
        return (instr[2],)
    if op == BIN:
        return (instr[3], instr[4])
    if op == UN:
        return (instr[3],)
    if op == LOAD:
        return (instr[2], instr[3])
    if op == STORE:
        return (instr[1], instr[2], instr[3])
    if op in (CALL, BUILTIN):
        return tuple(instr[3])
    return ()  # CONST, STR read nothing


def term_uses(term):
    """The registers a terminator reads (BR condition / RET value)."""
    op = term[0]
    if op == BR:
        return (term[1],)
    if op == RET and term[1] != -1:
        return (term[1],)
    return ()

_BINOP_NAMES = {code: sym for sym, code in BINOPS.items()}
_UNOP_NAMES = {code: sym for sym, code in UNOPS.items()}


def format_instr(instr):
    """Render an instruction tuple as a short human-readable string."""
    op = instr[0]
    if op == CONST:
        return "r%d = %d" % (instr[1], instr[2])
    if op == MOV:
        return "r%d = r%d" % (instr[1], instr[2])
    if op == BIN:
        return "r%d = r%d %s r%d  ; line %d" % (
            instr[2],
            instr[3],
            _BINOP_NAMES[instr[1]],
            instr[4],
            instr[5],
        )
    if op == UN:
        return "r%d = %sr%d" % (instr[2], _UNOP_NAMES[instr[1]], instr[3])
    if op == LOAD:
        return "r%d = r%d[r%d]  ; line %d" % (instr[1], instr[2], instr[3], instr[4])
    if op == STORE:
        return "r%d[r%d] = r%d  ; line %d" % (instr[1], instr[2], instr[3], instr[4])
    if op == CALL:
        args = ", ".join("r%d" % a for a in instr[3])
        return "r%d = call f%d(%s)  ; line %d" % (instr[1], instr[2], args, instr[4])
    if op == BUILTIN:
        args = ", ".join("r%d" % a for a in instr[3])
        return "r%d = builtin%d(%s)  ; line %d" % (instr[1], instr[2], args, instr[4])
    if op == STR:
        return "r%d = str#%d" % (instr[1], instr[2])
    raise ValueError("unknown opcode %r" % (op,))


def format_term(term):
    """Render a terminator tuple as a short human-readable string."""
    op = term[0]
    if op == JMP:
        return "jmp b%d" % term[1]
    if op == BR:
        return "br r%d ? b%d : b%d" % (term[1], term[2], term[3])
    if op == RET:
        return "ret" if term[1] == -1 else "ret r%d" % term[1]
    raise ValueError("unknown terminator %r" % (op,))
