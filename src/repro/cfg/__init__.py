"""Control-flow-graph IR: blocks, graphs, lowering, analyses, cleanups."""

from repro.cfg.block import BasicBlock
from repro.cfg.graph import FunctionCFG
from repro.cfg.program import ProgramCFG
from repro.cfg.analysis import (
    back_edges,
    dominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)

__all__ = [
    "BasicBlock",
    "FunctionCFG",
    "ProgramCFG",
    "back_edges",
    "dominators",
    "loop_depths",
    "natural_loops",
    "reverse_postorder",
]
