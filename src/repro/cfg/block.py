"""Basic blocks."""

from repro.cfg.instructions import BR, JMP, RET, format_instr, format_term


class BasicBlock:
    """A straight-line run of instructions ended by exactly one terminator.

    ``instrs`` is a list of instruction tuples, ``term`` a terminator tuple
    (or None while the block is under construction).
    """

    __slots__ = ("id", "instrs", "term")

    def __init__(self, block_id):
        self.id = block_id
        self.instrs = []
        self.term = None

    def successors(self):
        """Target block ids of this block's terminator (0, 1, or 2)."""
        term = self.term
        if term is None:
            return ()
        op = term[0]
        if op == JMP:
            return (term[1],)
        if op == BR:
            if term[2] == term[3]:
                return (term[2],)
            return (term[2], term[3])
        if op == RET:
            return ()
        raise ValueError("unknown terminator %r" % (term,))

    def is_terminated(self):
        return self.term is not None

    def __repr__(self):
        return "BasicBlock(id=%d, instrs=%d, term=%r)" % (
            self.id,
            len(self.instrs),
            self.term,
        )

    def pretty(self):
        """Multi-line listing of the block, for debugging and golden tests."""
        lines = ["b%d:" % self.id]
        lines.extend("  " + format_instr(i) for i in self.instrs)
        if self.term is not None:
            lines.append("  " + format_term(self.term))
        return "\n".join(lines)
