"""Per-function control-flow graphs."""

from repro.cfg.block import BasicBlock
from repro.cfg.instructions import BR, JMP, RET


class FunctionCFG:
    """The CFG of one MiniC function.

    Block 0 is always the entry.  ``nregs`` is the frame size; parameters
    occupy registers ``0 .. nparams-1``.  Function returns conceptually flow
    to a virtual EXIT node (id :data:`EXIT`), which analyses and the
    Ball-Larus pass use; the VM simply pops the frame.
    """

    EXIT = -1

    __slots__ = ("name", "index", "nparams", "nregs", "blocks")

    def __init__(self, name, index, nparams):
        self.name = name
        self.index = index
        self.nparams = nparams
        self.nregs = nparams
        self.blocks = []

    # -- construction ------------------------------------------------------

    def new_block(self):
        """Append and return a fresh, unterminated block."""
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def new_reg(self):
        """Allocate a fresh register and return its index."""
        reg = self.nregs
        self.nregs += 1
        return reg

    # -- structure queries ---------------------------------------------------

    def successors(self, block_id):
        return self.blocks[block_id].successors()

    def edges(self):
        """All intra-function edges as (src, dst) pairs, in block order.

        Edges to the virtual EXIT are not included; see :meth:`ret_blocks`.
        """
        result = []
        for block in self.blocks:
            for succ in block.successors():
                result.append((block.id, succ))
        return result

    def ret_blocks(self):
        """Ids of blocks whose terminator is RET (predecessors of EXIT)."""
        return [b.id for b in self.blocks if b.term is not None and b.term[0] == RET]

    def predecessors(self):
        """Map block id -> list of predecessor block ids."""
        preds = {block.id: [] for block in self.blocks}
        for src, dst in self.edges():
            preds[dst].append(src)
        return preds

    def validate(self):
        """Raise ValueError unless every block is terminated with sane targets."""
        nblocks = len(self.blocks)
        for block in self.blocks:
            if block.term is None:
                raise ValueError(
                    "%s: block b%d lacks a terminator" % (self.name, block.id)
                )
            for succ in block.successors():
                if not 0 <= succ < nblocks:
                    raise ValueError(
                        "%s: block b%d jumps to missing b%d"
                        % (self.name, block.id, succ)
                    )
        if not any(b.term[0] == RET for b in self.blocks):
            raise ValueError("%s: no return block" % self.name)

    def pretty(self):
        """Whole-function listing (entry first)."""
        header = "fn %s (index %d, %d params, %d regs)" % (
            self.name,
            self.index,
            self.nparams,
            self.nregs,
        )
        return "\n".join([header] + [b.pretty() for b in self.blocks])


def remap_targets(cfg, mapping):
    """Rewrite all terminator targets of ``cfg`` through ``mapping``.

    ``mapping`` is a dict old-block-id -> new-block-id.  Used by optimization
    passes after removing or renumbering blocks.
    """
    for block in cfg.blocks:
        term = block.term
        if term is None:
            continue
        op = term[0]
        if op == JMP:
            block.term = (JMP, mapping[term[1]])
        elif op == BR:
            block.term = (BR, term[1], mapping[term[2]], mapping[term[3]])
