"""CFG analyses: DFS orders, dominators, back edges, natural loops.

The Ball-Larus pass needs a set of *back edges* whose removal makes the graph
acyclic.  We use DFS back edges (edges into a block currently on the DFS
stack): removing all of them always yields a DAG, and on the reducible CFGs
MiniC's structured lowering produces they coincide with the natural
(dominator-based) loop back edges.  Dominators are computed with the
Cooper-Harvey-Kennedy iterative algorithm and are used by the optimizer and
by tests cross-checking the back-edge sets.
"""


def depth_first_order(cfg):
    """Return (preorder list, postorder list) of block ids from the entry.

    Uses an explicit stack; successor order follows the terminator encoding
    so results are deterministic.
    """
    preorder = []
    postorder = []
    visited = set()
    # (block_id, iterator-state) frames, explicit to avoid recursion limits.
    stack = [(0, iter(cfg.successors(0)))]
    visited.add(0)
    preorder.append(0)
    while stack:
        block_id, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if succ not in visited:
                visited.add(succ)
                preorder.append(succ)
                stack.append((succ, iter(cfg.successors(succ))))
                advanced = True
                break
        if not advanced:
            postorder.append(block_id)
            stack.pop()
    return preorder, postorder


def reverse_postorder(cfg):
    """Block ids in reverse postorder (a topological order when acyclic)."""
    _, postorder = depth_first_order(cfg)
    return list(reversed(postorder))


def back_edges(cfg):
    """The set of DFS back edges (src, dst): edges into a DFS-stack ancestor.

    Removing these from the CFG leaves an acyclic graph.
    """
    result = set()
    on_stack = {0}
    visited = {0}
    stack = [(0, iter(cfg.successors(0)))]
    while stack:
        block_id, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if succ in on_stack:
                result.add((block_id, succ))
            elif succ not in visited:
                visited.add(succ)
                on_stack.add(succ)
                stack.append((succ, iter(cfg.successors(succ))))
                advanced = True
                break
        if not advanced:
            on_stack.discard(block_id)
            stack.pop()
    return result


def dominators(cfg):
    """Immediate-dominator map {block_id: idom_id}; the entry maps to itself.

    Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
    """
    rpo = reverse_postorder(cfg)
    rpo_index = {b: i for i, b in enumerate(rpo)}
    preds = cfg.predecessors()
    idom = {0: 0}
    changed = True
    while changed:
        changed = False
        for block_id in rpo:
            if block_id == 0:
                continue
            candidates = [p for p in preds[block_id] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = _intersect(pred, new_idom, idom, rpo_index)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True
    return idom


def _intersect(a, b, idom, rpo_index):
    while a != b:
        while rpo_index[a] > rpo_index[b]:
            a = idom[a]
        while rpo_index[b] > rpo_index[a]:
            b = idom[b]
    return a


class DominatorTree:
    """The dominator tree of one CFG, memoized for O(1) queries.

    ``dominates()`` walking the idom chain is O(depth) per query; the
    liveness/feasibility passes issue enough queries that the chain walk
    shows up.  This precomputes, in one O(n) DFS over the tree, each
    block's *depth* and an Euler interval ``[pre, post)``: ``a`` dominates
    ``b`` exactly when ``a``'s interval contains ``b``'s entry time.
    """

    __slots__ = ("idom", "_depth", "_pre", "_post")

    def __init__(self, cfg=None, idom=None):
        if idom is None:
            idom = dominators(cfg)
        self.idom = idom
        children = {}
        for node, parent in idom.items():
            if node != parent:
                children.setdefault(parent, []).append(node)
        self._depth = {0: 0}
        self._pre = {}
        self._post = {}
        clock = 0
        stack = [(0, False)]
        while stack:
            node, done = stack.pop()
            if done:
                self._post[node] = clock
                continue
            self._pre[node] = clock
            clock += 1
            stack.append((node, True))
            for child in sorted(children.get(node, ()), reverse=True):
                self._depth[child] = self._depth[node] + 1
                stack.append((child, False))

    def depth(self, block_id):
        """Depth of ``block_id`` in the dominator tree (entry is 0)."""
        return self._depth[block_id]

    def dominates(self, a, b):
        """True when ``a`` dominates ``b`` — O(1) via Euler intervals."""
        if a == b:
            return True
        pre_b = self._pre.get(b)
        pre_a = self._pre.get(a)
        if pre_a is None or pre_b is None:
            return False
        return pre_a < pre_b and self._post[b] <= self._post[a]


def dominates(idom, a, b):
    """True when block ``a`` dominates block ``b``.

    ``idom`` may be a plain immediate-dominator map (walks the chain, the
    legacy behaviour) or a :class:`DominatorTree` (answers in O(1)).
    """
    if isinstance(idom, DominatorTree):
        return idom.dominates(a, b)
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def natural_loops(cfg):
    """Map back edge (src, dst) -> set of blocks in its natural loop.

    Only back edges whose target dominates their source (true natural loops)
    are included; on reducible CFGs that is every DFS back edge.
    """
    dom_tree = DominatorTree(cfg)
    preds = cfg.predecessors()
    loops = {}
    for src, dst in back_edges(cfg):
        if not dom_tree.dominates(dst, src):
            continue
        body = {dst, src}
        stack = [src]
        while stack:
            block_id = stack.pop()
            if block_id == dst:
                continue
            for pred in preds[block_id]:
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops[(src, dst)] = body
    return loops


def loop_depths(cfg):
    """Map block id -> nesting depth (0 = not in any loop).

    Used as a static execution-frequency estimate when the Ball-Larus
    spanning tree picks which edges to leave uninstrumented.
    """
    depths = {block.id: 0 for block in cfg.blocks}
    for body in natural_loops(cfg).values():
        for block_id in body:
            depths[block_id] += 1
    return depths
