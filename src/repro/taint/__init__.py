"""Dynamic taint tracking: byte-level input provenance for targeted mutation.

The taint subsystem is the layer between execution and search that the
blind-havoc loop lacks: it runs a test case under a *shadow* interpreter
(:mod:`repro.taint.track`) that propagates, for every runtime value, the set
of input byte offsets that influenced it.  Three artifacts come out:

- a :class:`~repro.taint.map.TaintMap` recording, per comparison site, which
  input bytes flow into each operand (plus a control-taint summary that
  makes the masks *sound* under implicit flows);
- rare-branch targets (:mod:`repro.taint.targets`): branch sites ranked by
  how few queue entries cover them, each paired with its byte mask;
- a masked-mutation stage in the fuzz engine (:mod:`repro.fuzzer.masked`)
  that freezes the bytes satisfying already-taken guards and concentrates
  energy on the bytes the target's comparison actually reads — the
  FairFuzz/Angora recipe adapted to the paper's path-aware engine.

Enable per-campaign with ``EngineConfig(use_taint=True)`` or globally with
the ``REPRO_TAINT`` environment variable (``1``/``true``/``on``/``yes``).
The taint interpreter is the reference semantics; the compiled backend
transparently falls back to it for taint runs (see
:meth:`repro.runtime.backend.Backend.taint_execute`).
"""

import os

from repro.taint.labels import LabelPool
from repro.taint.map import TaintMap
from repro.taint.targets import TaintState, TaintTarget, build_branch_index, select_targets
from repro.taint.track import TaintExec, taint_execute

TAINT_ENV = "REPRO_TAINT"

_TRUTHY = ("1", "true", "on", "yes")


def taint_enabled(flag=None):
    """Resolve the taint switch: explicit argument, else ``REPRO_TAINT``."""
    if flag is not None:
        return bool(flag)
    return (os.environ.get(TAINT_ENV) or "").strip().lower() in _TRUTHY


__all__ = [
    "LabelPool",
    "TaintMap",
    "TaintExec",
    "TaintState",
    "TaintTarget",
    "TAINT_ENV",
    "build_branch_index",
    "select_targets",
    "taint_enabled",
    "taint_execute",
]
