"""Taint-label lattice: interned byte-offset sets with cheap union.

A *label* is either ``None`` (untainted — the fast path, so shadow
arithmetic on clean values costs one ``is None`` check) or a ``frozenset``
of input byte offsets.  Labels are interned per :class:`LabelPool` so that

- the same offset set is one object (identity comparison works, and the
  pool's union memo can key on object ids);
- unions of the same two labels are computed once per execution.

The pool is created per taint run and discarded with it; nothing here is
global state, so taint runs stay deterministic and side-effect free.
"""

EMPTY = frozenset()


class LabelPool:
    """Interns frozenset labels and memoizes pairwise unions."""

    __slots__ = ("_interned", "_singles", "_union_memo")

    def __init__(self):
        # Strong refs on purpose: interning keeps label objects alive for
        # the pool's lifetime, which is what makes id()-keyed memo entries
        # safe (a dead object's id could be recycled).
        self._interned = {EMPTY: EMPTY}
        self._singles = {}
        self._union_memo = {}

    def intern(self, offsets):
        """Return the canonical label for ``offsets`` (any iterable of ints)."""
        fs = frozenset(offsets)
        if not fs:
            return None
        return self._interned.setdefault(fs, fs)

    def single(self, offset):
        """Label for one input byte — cached, as these seed every taint run."""
        label = self._singles.get(offset)
        if label is None:
            label = self.intern((offset,))
            self._singles[offset] = label
        return label

    def union(self, a, b):
        """Join two labels; ``None`` is bottom, so clean operands cost nothing."""
        if a is None:
            return b
        if b is None or a is b:
            return a
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        out = self._union_memo.get(key)
        if out is None:
            if a <= b:
                out = b
            elif b <= a:
                out = a
            else:
                out = self._interned.setdefault(a | b, a | b)
            self._union_memo[key] = out
        return out

    def union_all(self, labels):
        """Fold :meth:`union` over an iterable of labels."""
        out = None
        for label in labels:
            out = self.union(out, label)
        return out
