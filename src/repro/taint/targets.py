"""Rare-branch target ranking: where to aim the masked-mutation stage.

FairFuzz's observation, transplanted: branches covered by only a handful of
queue entries mark the frontier — steering mutation energy at them beats
uniform havoc.  We already have everything needed to find them: the queue's
per-entry coverage traces (hit-rarity) and the instrumentation's action
tables (which map index belongs to which conditional branch edge).

:func:`build_branch_index` inverts the edge-action tables once per campaign;
:func:`select_targets` ranks covered branch indices by how few entries cover
them; :class:`TaintState` is the engine-side container (per-entry TaintMap
cache, per-target visit budget, counters) that snapshots with the engine.

Feedbacks without per-edge ACT_HIT probes (e.g. pure path feedback) yield an
empty branch index; the masked stage then falls back to cmp-mask focus, so
taint guidance degrades gracefully instead of turning off.
"""

from repro.cfg.instructions import BR
from repro.runtime.interpreter import ACT_HIT


class BranchSiteInfo:
    """Static description of one conditional-branch edge's map index."""

    __slots__ = ("index", "site", "dst", "sibling_index")

    def __init__(self, index, site, dst, sibling_index):
        self.index = index  # coverage-map index of this branch edge
        self.site = site  # (function name, source block id) — TaintMap's key
        self.dst = dst  # destination block of this edge
        self.sibling_index = sibling_index  # map index of the other arm (or None)


class TaintTarget:
    """One selected rare-branch target paired with the seed that reaches it."""

    __slots__ = ("index", "rarity", "entry", "site", "sibling_index")

    def __init__(self, index, rarity, entry, site, sibling_index):
        self.index = index
        self.rarity = rarity
        self.entry = entry
        self.site = site
        self.sibling_index = sibling_index

    def __repr__(self):
        return "TaintTarget(idx=%d, rarity=%d, site=%r)" % (
            self.index,
            self.rarity,
            self.site,
        )


def build_branch_index(program, instrumentation):
    """Map coverage indices to conditional-branch sites.

    Scans ``edge_actions`` for ACT_HIT probes on edges whose source block
    terminates in BR.  Map-index collisions keep the first site seen (walk
    order is deterministic: function index, then sorted edges).  Returns an
    empty dict for feedbacks with no per-edge hit probes.
    """
    index = {}
    if instrumentation is None:
        return index
    for func in program.funcs:
        table = instrumentation.edge_actions[func.index]
        if not table:
            continue
        hit_idx = {}  # edge -> ACT_HIT map index, for sibling lookup
        for edge, acts in table.items():
            for act in acts:
                if act[0] == ACT_HIT:
                    hit_idx[edge] = act[1]
                    break
        for (src, dst) in sorted(hit_idx):
            if func.blocks[src].term[0] != BR:
                continue
            term = func.blocks[src].term
            sibling_dst = term[3] if dst == term[2] else term[2]
            map_idx = hit_idx[(src, dst)]
            if map_idx in index:
                continue
            index[map_idx] = BranchSiteInfo(
                index=map_idx,
                site=(func.name, src),
                dst=dst,
                sibling_index=hit_idx.get((src, sibling_dst)),
            )
    return index


def select_targets(queue, branch_index, limit, visits=None, max_visits=4):
    """Rank covered branch sites by hit-rarity and return the top ``limit``.

    Rarity of a map index = number of queue entries whose trace covers it.
    Indices covered by *every* entry carry no signal and are skipped (unless
    the queue has a single entry).  Each target pairs the index with its
    ``top_rated`` champion — the cheapest seed known to reach the branch.
    Targets visited ``max_visits`` times already are skipped, so the stage
    rotates through the frontier instead of hammering one site.
    """
    entries = queue.entries
    total = len(entries)
    if limit <= 0 or not total or not branch_index:
        return []
    counts = {}
    for entry in entries:
        for idx in entry.trace:
            if idx in branch_index:
                counts[idx] = counts.get(idx, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (item[1], item[0]))
    targets = []
    for idx, rarity in ranked:
        if total > 1 and rarity >= total:
            continue
        if visits is not None and visits.get(idx, 0) >= max_visits:
            continue
        champion = queue.top_rated.get(idx)
        if champion is None:
            continue
        info = branch_index[idx]
        targets.append(TaintTarget(idx, rarity, champion, info.site, info.sibling_index))
        if len(targets) >= limit:
            break
    return targets


class TaintState:
    """Mutable per-engine taint bookkeeping (snapshot/restore-able).

    The branch index is *not* part of snapshots — it is a pure function of
    (program, instrumentation) and is rebuilt lazily after restore.  The
    TaintMap cache IS snapshotted: a restored engine must not re-run taint
    executions the original run had cached, or the virtual clock would
    diverge tick-for-tick.
    """

    MAP_CACHE_CAP = 32

    __slots__ = (
        "maps",
        "visits",
        "taint_runs",
        "targets_selected",
        "masked_execs",
        "masked_hits",
        "branch_index",
    )

    def __init__(self):
        self.maps = {}  # entry_id -> TaintMap (LRU by insertion order)
        self.visits = {}  # map index -> times targeted
        self.taint_runs = 0
        self.targets_selected = 0
        self.masked_execs = 0
        self.masked_hits = 0
        self.branch_index = None  # lazily built; never snapshotted

    def cache_map(self, entry_id, tmap):
        maps = self.maps
        if entry_id in maps:
            del maps[entry_id]  # refresh LRU position
        maps[entry_id] = tmap
        while len(maps) > self.MAP_CACHE_CAP:
            del maps[next(iter(maps))]

    def cached_map(self, entry_id):
        return self.maps.get(entry_id)

    def hit_rate(self):
        """Fraction of masked mutations that flipped their target branch."""
        return self.masked_hits / self.masked_execs if self.masked_execs else 0.0

    def snapshot(self):
        return {
            "maps": dict(self.maps),
            "visits": dict(self.visits),
            "taint_runs": self.taint_runs,
            "targets_selected": self.targets_selected,
            "masked_execs": self.masked_execs,
            "masked_hits": self.masked_hits,
        }

    def restore(self, snap):
        self.maps = dict(snap["maps"])
        self.visits = dict(snap["visits"])
        self.taint_runs = snap["taint_runs"]
        self.targets_selected = snap["targets_selected"]
        self.masked_execs = snap["masked_execs"]
        self.masked_hits = snap["masked_hits"]
        self.branch_index = None
        return self
