"""The taint no-op gate: enabled-but-idle taint must cost (almost) nothing.

Two contracts, both executable (the ``taint-soundness`` CI job runs this):

1. **Observable identity** — a campaign with ``use_taint=True`` but the
   masked stage disabled (``taint_targets=0``) produces a
   :class:`~repro.fuzzer.campaign.CampaignResult` field-for-field equal to
   the same campaign with taint off.  An idle taint cycle selects no
   targets, charges no clock ticks, and draws no RNG — so enabling the
   subsystem without aiming it must be invisible to every science field.
2. **Overhead** — the idle-taint run's best-of-N wall time stays within
   ``gate`` percent (default 10) of the taint-off best-of-N.  Best-of-N
   discards scheduler noise, which on shared CI runners dwarfs the effect
   being measured (same methodology as :mod:`repro.telemetry.overhead`).

Run as ``python -m repro.taint.noop_gate [--gate 10]``.
"""

import argparse
import sys
from time import perf_counter

from repro.fuzzer.campaign import result_from_engines
from repro.fuzzer.clock import hours_to_ticks
from repro.fuzzer.engine import FuzzEngine
from repro.subjects import get_subject

DEFAULT_SUBJECT = "flvmeta"
DEFAULT_CONFIG = "pcguard"
DEFAULT_HOURS = 2.0
DEFAULT_SCALE = 4.0
DEFAULT_REPEATS = 3
DEFAULT_GATE_PCT = 10.0


class NoopGateReport:
    """Outcome of one measurement: timings, overhead, verdicts."""

    __slots__ = ("off_secs", "idle_secs", "overhead_pct", "gate_pct", "identical")

    def __init__(self, off_secs, idle_secs, gate_pct, identical):
        self.off_secs = off_secs
        self.idle_secs = idle_secs
        self.overhead_pct = (
            (idle_secs - off_secs) / off_secs * 100.0 if off_secs else 0.0
        )
        self.gate_pct = gate_pct
        self.identical = identical

    @property
    def passed(self):
        return self.identical and self.overhead_pct <= self.gate_pct

    def summary(self):
        return (
            "taint no-op gate: off %.3fs, idle-taint %.3fs -> %+.2f%% "
            "(gate %.1f%%), observables %s"
            % (
                self.off_secs,
                self.idle_secs,
                self.overhead_pct,
                self.gate_pct,
                "identical" if self.identical else "DIVERGED",
            )
        )


def _run_campaign(subject, budget_ticks, run_seed, use_taint):
    """One plain edge-feedback campaign; returns (CampaignResult, seconds)."""
    from repro.experiments.config import FUZZER_CONFIGS, campaign_rng

    spec = FUZZER_CONFIGS[DEFAULT_CONFIG]
    config = spec.engine_config(subject)
    config.use_taint = use_taint
    config.taint_targets = 0  # masked stage disabled either way
    engine = FuzzEngine(
        subject.program,
        spec.feedback_factory(),
        subject.seeds,
        campaign_rng(subject.name, DEFAULT_CONFIG, run_seed),
        config,
        subject.tokens,
    )
    start = perf_counter()
    engine.run(budget_ticks)
    elapsed = perf_counter() - start
    result = result_from_engines(
        subject, DEFAULT_CONFIG, run_seed, [engine], engine
    )
    return result, elapsed


def run_gate(
    subject_name=DEFAULT_SUBJECT,
    hours=DEFAULT_HOURS,
    scale=DEFAULT_SCALE,
    repeats=DEFAULT_REPEATS,
    gate_pct=DEFAULT_GATE_PCT,
    run_seed=0,
):
    """Measure idle-taint vs taint-off; return a :class:`NoopGateReport`."""
    subject = get_subject(subject_name)
    budget = hours_to_ticks(hours, scale)
    identical = True
    off_best = idle_best = float("inf")
    for _ in range(max(1, repeats)):
        off_result, off_secs = _run_campaign(subject, budget, run_seed, False)
        idle_result, idle_secs = _run_campaign(subject, budget, run_seed, True)
        identical = identical and off_result == idle_result
        off_best = min(off_best, off_secs)
        idle_best = min(idle_best, idle_secs)
    return NoopGateReport(off_best, idle_best, gate_pct, identical)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.taint.noop_gate",
        description="assert idle taint is observable-identical and cheap",
    )
    parser.add_argument("--subject", default=DEFAULT_SUBJECT)
    parser.add_argument("--hours", type=float, default=DEFAULT_HOURS)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--gate", type=float, default=DEFAULT_GATE_PCT,
                        metavar="PCT", help="max idle overhead %% (default 10)")
    args = parser.parse_args(argv)
    report = run_gate(
        subject_name=args.subject,
        hours=args.hours,
        scale=args.scale,
        repeats=args.repeats,
        gate_pct=args.gate,
    )
    print(report.summary())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
