"""TaintExec: the shadow interpreter that tracks byte-level input provenance.

:class:`TaintExec` subclasses the VM's ``_Exec`` and re-runs the interpreter
loop with a *shadow register file* of taint labels alongside the concrete
one.  The mirroring contract is strict — same instruction counting, same
probe accounting, same traps, same cmplog — so a taint run's
:class:`~repro.runtime.interpreter.ExecutionResult` is bit-identical to the
plain interpreter's (the ``test_taint.py`` equivalence tests pin this).  The
only additions are shadow operations feeding a :class:`~repro.taint.map.TaintMap`.

Propagation rules (DESIGN §12):

- input bytes are the taint sources: byte ``i`` of the test case gets the
  singleton label ``{i}``;
- binary/unary operators join their operands' labels; LOAD joins the cell's
  label with the index's (the loaded value depends on *which* cell);
- STORE writes the source label into the shadow cell; ``copy``/``fill``
  move labels like the data they shadow; ``read16``/``read32`` join the
  window's cell labels;
- **control taint** is a monotone per-execution accumulator folding in every
  label that could steer control: branch conditions, array indices and
  bounds (including tainted alloc sizes), divisors, shift amounts, builtin
  offsets/lengths, trap codes.  It over-approximates implicit flows: any
  byte *not* in ``ctl`` provably cannot change the execution path, which is
  the induction that makes ``TaintMap.sound_mask`` sound.

The one structural difference from the base loop: edge probe actions run
through the out-of-line ``_run_actions`` helper instead of the inlined hot
path.  The two are accounting-identical by construction; the inline copy
exists in ``_Exec`` purely for speed.
"""

from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    COMPARISON_OPS,
    CONST,
    JMP,
    LOAD,
    MOV,
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SHL,
    OP_SUB,
    OP_XOR,
    OP_LNOT,
    OP_NEG,
    STORE,
    UN,
)
from repro.lang.builtins_spec import BUILTIN_CODES
from repro.runtime import traps
from repro.runtime.interpreter import (
    CMPLOG_CAP,
    DEFAULT_CALL_DEPTH,
    DEFAULT_INSTR_BUDGET,
    ExecutionResult,
    _c_div,
    _c_mod,
    _Exec,
)
from repro.runtime.traps import Timeout, Trap
from repro.runtime.values import ArrayRef, wrap_int
from repro.taint.labels import LabelPool
from repro.taint.map import TaintMap


def taint_execute(
    program,
    input_bytes,
    instrumentation=None,
    instr_budget=DEFAULT_INSTR_BUDGET,
    call_depth_limit=DEFAULT_CALL_DEPTH,
    cmplog=False,
    pair_cap=8,
):
    """Run ``program.main(input_bytes)`` under taint tracking.

    Returns ``(ExecutionResult, TaintMap)``.  The ExecutionResult is
    bit-identical to a plain :func:`~repro.runtime.interpreter.execute` of
    the same input; the TaintMap is finalized even on trap/timeout.
    """
    vm = TaintExec(program, instrumentation, instr_budget, call_depth_limit, cmplog, pair_cap)
    return vm.run(input_bytes)


class TaintExec(_Exec):
    """Shadow interpreter: concrete semantics of ``_Exec`` + taint labels."""

    def __init__(
        self,
        program,
        instrumentation,
        instr_budget=DEFAULT_INSTR_BUDGET,
        call_depth_limit=DEFAULT_CALL_DEPTH,
        cmplog=False,
        pair_cap=8,
    ):
        super().__init__(program, instrumentation, instr_budget, call_depth_limit, cmplog)
        self._pool = LabelPool()
        self._tmap = TaintMap(pair_cap=pair_cap)
        self._tcells = {}  # array_id -> list of shadow cell labels (lazy)
        self._tlen = {}  # array_id -> label of a tainted alloc size
        self._ctl = None  # monotone control-taint accumulator
        self._tret = None  # return-value label of the last finished call

    def run(self, input_bytes):
        input_ref = self._heap.alloc(len(input_bytes))
        storage = self._heap.storage(input_ref)
        storage[: len(input_bytes)] = input_bytes
        single = self._pool.single
        self._tcells[input_ref.array_id] = [single(i) for i in range(len(input_bytes))]
        retval, trap, timeout = 0, None, False
        try:
            retval = self._call(self._program.main_index, [input_ref], [None])
        except Trap as caught:
            trap = caught
        except Timeout:
            timeout = True
        self._tmap.finalize(self._ctl, len(input_bytes))
        result = ExecutionResult(
            retval,
            trap,
            timeout,
            self._count,
            self._probe_acc[0],
            self._probe_acc[1],
            self._hits,
            self._cmp_log,
        )
        return result, self._tmap

    # -- shadow-cell helpers -------------------------------------------------

    def _cells_for_write(self, array_id):
        """Materialized shadow cell list for an array (lazily, on first write)."""
        cells = self._tcells.get(array_id)
        if cells is None:
            cells = self._tcells[array_id] = [None] * len(self._heap._arrays[array_id])
        return cells

    def _bounds_taint(self, arr):
        """Label guarding an array's bounds (tainted alloc size, if any)."""
        return self._tlen.get(arr.array_id)

    # -- the mirrored interpreter loop ---------------------------------------

    def _call(self, func_index, args, arg_labels=None):
        program = self._program
        func = program.funcs[func_index]
        fname = func.name
        heap = self._heap
        pool = self._pool
        union = pool.union
        tmap = self._tmap
        regs = [0] * func.nregs
        regs[: len(args)] = args
        tregs = [None] * func.nregs
        if arg_labels:
            tregs[: len(arg_labels)] = arg_labels
        if self._instr is not None:
            erows = self._instr.edge_rows[func_index]
            racts = self._instr.ret_actions[func_index]
            enacts = self._instr.entry_actions[func_index]
            mask = self._instr.map_mask
            if enacts:
                self._run_actions(enacts, 0, mask)
        else:
            erows = racts = None
            mask = 0
        pathreg = 0
        blocks = func.blocks
        cur = 0
        budget = self._budget
        while True:
            block = blocks[cur]
            instrs = block.instrs
            self._count += len(instrs) + 1
            if self._count > budget:
                raise Timeout(budget)
            for ins in instrs:
                op = ins[0]
                if op == BIN:
                    binop = ins[1]
                    la = tregs[ins[3]]
                    lb = tregs[ins[4]]
                    try:
                        a = regs[ins[3]]
                        b = regs[ins[4]]
                        if binop == OP_EQ:
                            value = 1 if a == b else 0
                        elif binop == OP_NE:
                            value = 1 if a != b else 0
                        elif binop == OP_ADD:
                            value = wrap_int(a + b)
                        elif binop == OP_SUB:
                            value = wrap_int(a - b)
                        elif binop == OP_LT:
                            value = 1 if a < b else 0
                        elif binop == OP_LE:
                            value = 1 if a <= b else 0
                        elif binop == OP_GT:
                            value = 1 if a > b else 0
                        elif binop == OP_GE:
                            value = 1 if a >= b else 0
                        elif binop == OP_MUL:
                            value = wrap_int(a * b)
                        elif binop == OP_AND:
                            value = a & b
                        elif binop == OP_OR:
                            value = a | b
                        elif binop == OP_XOR:
                            value = a ^ b
                        elif binop == OP_DIV:
                            self._ctl = union(self._ctl, lb)
                            if b == 0:
                                self._trap(traps.DIV_BY_ZERO, fname, ins[5], "division by zero")
                            value = wrap_int(_c_div(a, b))
                        elif binop == OP_MOD:
                            self._ctl = union(self._ctl, lb)
                            if b == 0:
                                self._trap(traps.DIV_BY_ZERO, fname, ins[5], "modulo by zero")
                            value = wrap_int(_c_mod(a, b))
                        elif binop == OP_SHL:
                            self._ctl = union(self._ctl, lb)
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE, fname, ins[5], "shift by %d" % b
                                )
                            value = wrap_int(a << b)
                        else:  # OP_SHR
                            self._ctl = union(self._ctl, lb)
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE, fname, ins[5], "shift by %d" % b
                                )
                            value = a >> b
                    except TypeError:
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[5], "array used as integer"
                        )
                    if binop in COMPARISON_OPS:
                        if self._cmplog and len(self._cmp_log) < CMPLOG_CAP:
                            self._cmp_log.append((a, b))
                        tmap.record_cmp((fname, ins[5], binop), la, lb, a, b)
                    regs[ins[2]] = value
                    tregs[ins[2]] = union(la, lb)
                elif op == CONST:
                    regs[ins[1]] = ins[2]
                    tregs[ins[1]] = None
                elif op == MOV:
                    regs[ins[1]] = regs[ins[2]]
                    tregs[ins[1]] = tregs[ins[2]]
                elif op == LOAD:
                    arr = regs[ins[2]]
                    idx = regs[ins[3]]
                    larr = tregs[ins[2]]
                    lidx = tregs[ins[3]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[4], "indexing a non-array"
                        )
                    # Index, ref identity, and bounds steer whether we trap.
                    self._ctl = union(
                        union(self._ctl, lidx), union(larr, self._bounds_taint(arr))
                    )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_READ,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    cells = self._tcells.get(arr.array_id)
                    cell = cells[idx] if cells is not None else None
                    regs[ins[1]] = storage[idx]
                    tregs[ins[1]] = union(cell, union(lidx, larr))
                elif op == STORE:
                    arr = regs[ins[1]]
                    idx = regs[ins[2]]
                    larr = tregs[ins[1]]
                    lidx = tregs[ins[2]]
                    lsrc = tregs[ins[3]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[4], "indexing a non-array"
                        )
                    if heap.is_readonly(arr):
                        self._trap(
                            traps.READONLY_WRITE, fname, ins[4], "write to constant"
                        )
                    self._ctl = union(
                        union(self._ctl, lidx), union(larr, self._bounds_taint(arr))
                    )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_WRITE,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    storage[idx] = regs[ins[3]]
                    if lsrc is not None or arr.array_id in self._tcells:
                        self._cells_for_write(arr.array_id)[idx] = lsrc
                elif op == UN:
                    unop = ins[1]
                    a = regs[ins[3]]
                    try:
                        if unop == OP_NEG:
                            regs[ins[2]] = wrap_int(-a)
                        elif unop == OP_LNOT:
                            regs[ins[2]] = 1 if a == 0 else 0
                        else:
                            regs[ins[2]] = wrap_int(~a)
                    except TypeError:
                        self._trap(traps.TYPE_CONFUSION, fname, 0, "array in arithmetic")
                    tregs[ins[2]] = tregs[ins[3]]
                elif op == CALL:
                    if len(self._stack) + 1 >= self._depth_limit:
                        self._trap(
                            traps.STACK_OVERFLOW, fname, ins[4], "call depth exceeded"
                        )
                    self._stack.append((fname, ins[4]))
                    regs[ins[1]] = self._call(
                        ins[2],
                        [regs[r] for r in ins[3]],
                        [tregs[r] for r in ins[3]],
                    )
                    self._stack.pop()
                    tregs[ins[1]] = self._tret
                elif op == BUILTIN:
                    regs[ins[1]], tregs[ins[1]] = self._taint_builtin(
                        ins[2],
                        [regs[r] for r in ins[3]],
                        [tregs[r] for r in ins[3]],
                        fname,
                        ins[4],
                    )
                else:  # STR
                    regs[ins[1]] = heap.string_ref(ins[2])
                    tregs[ins[1]] = None
            term = block.term
            top = term[0]
            if top == BR:
                cond_label = tregs[term[1]]
                nxt = term[2] if regs[term[1]] else term[3]
                self._ctl = union(self._ctl, cond_label)
                tmap.record_branch((fname, cur), nxt, cond_label)
            elif top == JMP:
                nxt = term[1]
            else:  # RET
                if racts is not None:
                    acts = racts.get(cur)
                    if acts:
                        self._run_actions(acts, pathreg, mask)
                value = term[1]
                if value == -1:
                    self._tret = None
                    return 0
                self._tret = tregs[value]
                return regs[value]
            if erows is not None:
                row = erows[cur]
                if row is not None:
                    acts = row.get(nxt)
                    if acts:
                        pathreg = self._run_actions(acts, pathreg, mask)
            cur = nxt

    # -- taint-aware builtins --------------------------------------------------

    def _taint_builtin(self, code, vals, labels, fname, line):
        """Run a builtin with base-VM semantics, returning (value, label).

        Each wrapper delegates to the base ``_bi_*`` method for the concrete
        value — identical traps, virtual-time charges, and cmplog — then
        computes the result label and any shadow-memory side effects.
        """
        handler = _TAINT_BUILTINS[code]
        return handler(self, vals, labels, fname, line)

    def _tb_alloc(self, vals, labels, fname, line):
        self._ctl = self._pool.union(self._ctl, labels[0])
        ref = self._bi_alloc(vals, fname, line)
        if labels[0] is not None:
            self._tlen[ref.array_id] = labels[0]
        return ref, None

    def _tb_len(self, vals, labels, fname, line):
        value = self._bi_len(vals, fname, line)
        ref = vals[0]
        return value, self._pool.union(labels[0], self._tlen.get(ref.array_id))

    def _tb_abs(self, vals, labels, fname, line):
        return self._bi_abs(vals, fname, line), labels[0]

    def _tb_min(self, vals, labels, fname, line):
        return self._bi_min(vals, fname, line), self._pool.union(labels[0], labels[1])

    def _tb_max(self, vals, labels, fname, line):
        return self._bi_max(vals, fname, line), self._pool.union(labels[0], labels[1])

    def _window_label(self, ref, off, n, ref_label):
        """Join of the shadow labels of ``ref[off:off+n]`` plus the ref's own."""
        union = self._pool.union
        out = union(ref_label, self._tlen.get(ref.array_id))
        cells = self._tcells.get(ref.array_id)
        if cells is not None:
            for label in cells[off : off + n]:
                out = union(out, label)
        return out

    def _tb_memcmp(self, vals, labels, fname, line):
        union = self._pool.union
        # Offsets and length steer the bounds traps (and the trap-free path).
        self._ctl = union(union(self._ctl, labels[1]), union(labels[3], labels[4]))
        value = self._bi_memcmp(vals, fname, line)
        a, aoff, b, boff, n = vals
        la = self._window_label(a, aoff, n, labels[0])
        lb = self._window_label(b, boff, n, labels[2])
        sa = self._heap.storage(a)
        sb = self._heap.storage(b)
        left = bytes(v & 0xFF for v in sa[aoff : aoff + n])
        right = bytes(v & 0xFF for v in sb[boff : boff + n])
        self._tmap.record_cmp((fname, line, "memcmp"), la, lb, left, right)
        return value, union(la, lb)

    def _tb_copy(self, vals, labels, fname, line):
        union = self._pool.union
        self._ctl = union(union(self._ctl, labels[1]), union(labels[3], labels[4]))
        value = self._bi_copy(vals, fname, line)
        dst, doff, src, soff, n = vals
        src_cells = self._tcells.get(src.array_id)
        if src_cells is not None:
            # Capture the source slice first: dst may alias src (memmove).
            window = list(src_cells[soff : soff + n])
        else:
            window = None
        if window is not None or dst.array_id in self._tcells:
            cells = self._cells_for_write(dst.array_id)
            cells[doff : doff + n] = window if window is not None else [None] * n
        return value, None

    def _tb_fill(self, vals, labels, fname, line):
        union = self._pool.union
        self._ctl = union(union(self._ctl, labels[1]), labels[2])
        value = self._bi_fill(vals, fname, line)
        ref, off, n, _fill_value = vals
        if labels[3] is not None or ref.array_id in self._tcells:
            cells = self._cells_for_write(ref.array_id)
            cells[off : off + n] = [labels[3]] * n
        return value, None

    def _tb_read(self, vals, labels, fname, line, width, reader):
        self._ctl = self._pool.union(self._ctl, labels[1])
        value = reader(self, vals, fname, line)
        return value, self._window_label(vals[0], vals[1], width, labels[0])

    def _tb_read16(self, vals, labels, fname, line):
        return self._tb_read(vals, labels, fname, line, 2, _Exec._bi_read16)

    def _tb_read32(self, vals, labels, fname, line):
        return self._tb_read(vals, labels, fname, line, 4, _Exec._bi_read32)

    def _tb_read16le(self, vals, labels, fname, line):
        return self._tb_read(vals, labels, fname, line, 2, _Exec._bi_read16le)

    def _tb_read32le(self, vals, labels, fname, line):
        return self._tb_read(vals, labels, fname, line, 4, _Exec._bi_read32le)

    def _tb_trap(self, vals, labels, fname, line):
        self._ctl = self._pool.union(self._ctl, labels[0])
        return self._bi_trap(vals, fname, line), None


_TAINT_BUILTINS = {
    BUILTIN_CODES["alloc"]: TaintExec._tb_alloc,
    BUILTIN_CODES["len"]: TaintExec._tb_len,
    BUILTIN_CODES["abs"]: TaintExec._tb_abs,
    BUILTIN_CODES["min"]: TaintExec._tb_min,
    BUILTIN_CODES["max"]: TaintExec._tb_max,
    BUILTIN_CODES["memcmp"]: TaintExec._tb_memcmp,
    BUILTIN_CODES["copy"]: TaintExec._tb_copy,
    BUILTIN_CODES["fill"]: TaintExec._tb_fill,
    BUILTIN_CODES["read16"]: TaintExec._tb_read16,
    BUILTIN_CODES["read32"]: TaintExec._tb_read32,
    BUILTIN_CODES["read16le"]: TaintExec._tb_read16le,
    BUILTIN_CODES["read32le"]: TaintExec._tb_read32le,
    BUILTIN_CODES["trap"]: TaintExec._tb_trap,
}
