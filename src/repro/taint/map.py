"""TaintMap: the per-input provenance artifact collected alongside coverage.

One taint run produces one :class:`TaintMap` describing, for the executed
input:

- **cmp sites** — for each comparison executed (BIN comparisons and
  ``memcmp``), which input byte offsets flowed into each operand, how often
  the site fired, and a small sample of observed operand pairs (for masked
  input-to-state candidates);
- **branch trail** — the sequence of conditional branches taken, with the
  taint label of each condition (the data the masked-mutation stage uses to
  freeze already-satisfied guards);
- **control** — the over-approximated implicit-flow mask: the union of all
  branch-condition taints plus every taint that could change control by
  trapping (array indices, divisors, shift amounts, alloc sizes, builtin
  bounds).  ``sound_mask`` folds it in, which is what makes the byte-flip
  soundness property hold: a byte outside the sound mask cannot steer
  execution onto a different path, so the site observes identical operands.

TaintMaps are plain picklable data (tuples/sets/dicts only).
"""

BRANCH_TRAIL_CAP = 8192


def _comparable(value):
    """Operand values worth sampling: ints and memcmp byte windows (not refs)."""
    return isinstance(value, (int, bytes))


class CmpSite:
    """Aggregate taint record for one comparison site."""

    __slots__ = ("site", "mask_a", "mask_b", "hits", "pairs")

    def __init__(self, site):
        self.site = site  # (function, line, op) — op is a binop code or "memcmp"
        self.mask_a = set()
        self.mask_b = set()
        self.hits = 0
        self.pairs = []  # sampled (a, b) operand pairs, capped

    def mask(self):
        """Direct (explicit-flow) mask: bytes reaching either operand."""
        return self.mask_a | self.mask_b


class TaintMap:
    """Byte-level provenance of one execution, keyed by comparison site."""

    __slots__ = ("cmp_sites", "branch_trail", "branch_masks", "control", "input_len", "pair_cap")

    def __init__(self, pair_cap=8):
        self.cmp_sites = {}  # site key -> CmpSite
        # (site, taken_dst, cond_mask) in execution order; site = (fname, src_block)
        self.branch_trail = []
        self.branch_masks = {}  # branch site -> set of byte offsets (union over hits)
        self.control = frozenset()
        self.input_len = 0
        self.pair_cap = pair_cap

    # -- recording (called by TaintExec) ---------------------------------

    def record_cmp(self, site, label_a, label_b, a, b):
        rec = self.cmp_sites.get(site)
        if rec is None:
            rec = self.cmp_sites[site] = CmpSite(site)
        if label_a is not None:
            rec.mask_a.update(label_a)
        if label_b is not None:
            rec.mask_b.update(label_b)
        rec.hits += 1
        if len(rec.pairs) < self.pair_cap and _comparable(a) and _comparable(b):
            rec.pairs.append((a, b))

    def record_branch(self, site, taken_dst, cond_label):
        mask = frozenset(cond_label) if cond_label is not None else frozenset()
        if len(self.branch_trail) < BRANCH_TRAIL_CAP:
            self.branch_trail.append((site, taken_dst, mask))
        existing = self.branch_masks.get(site)
        if existing is None:
            self.branch_masks[site] = set(mask)
        else:
            existing.update(mask)

    def finalize(self, control_label, input_len):
        self.control = frozenset(control_label) if control_label is not None else frozenset()
        self.input_len = input_len

    # -- queries ---------------------------------------------------------

    def sound_mask(self, site):
        """Over-approximate byte mask for a cmp site (explicit + implicit flows)."""
        rec = self.cmp_sites.get(site)
        if rec is None:
            return set(self.control)
        return rec.mask() | self.control

    def focus_fallback(self):
        """All bytes reaching any comparison — used when no branch site is known."""
        focus = set()
        for rec in self.cmp_sites.values():
            focus |= rec.mask_a
            focus |= rec.mask_b
        return focus

    def target_masks(self, branch_site, length=None):
        """(focus, frozen) byte sets for steering ``branch_site``.

        *focus* is the byte mask of the target branch's condition; *frozen*
        is the union of condition masks of branches taken *before* the
        target on this input's trail — the bytes that satisfy the guards
        guarding the way in, which masked mutation must not disturb.
        A branch site absent from the trail falls back to all cmp bytes.
        """
        if length is None:
            length = self.input_len
        focus = set()
        frozen = set()
        seen_target = False
        if branch_site is not None and branch_site in self.branch_masks:
            for site, _taken, mask in self.branch_trail:
                if site == branch_site:
                    seen_target = True
                    focus |= mask
                elif not seen_target:
                    frozen |= mask
            if not seen_target:  # trail was capped before reaching the site
                focus = set(self.branch_masks[branch_site])
        if not focus:
            focus = self.focus_fallback()
        focus = {off for off in focus if 0 <= off < length}
        frozen = {off for off in frozen if 0 <= off < length} - focus
        return focus, frozen

    def stats(self):
        """Small summary dict for telemetry."""
        masks = [len(rec.mask()) for rec in self.cmp_sites.values()]
        return {
            "cmp_sites": len(self.cmp_sites),
            "branches": len(self.branch_trail),
            "control_bytes": len(self.control),
            "mean_mask": (sum(masks) / len(masks)) if masks else 0.0,
        }
