"""Subject ``exiv2`` — an image-metadata toolkit lookalike.

A TIFF-flavoured metadata store with typed IFD entries and several tag
handlers (orientation, rational resolution, ASCII description, sub-IFD
links).  The paper's exiv2 yields ~8 bugs with only mild queue explosion
(1.06x): the CFGs here are branchy but loop-light, so path counts stay
close to edge counts.  The census mixes shallow offset bugs, handler
arithmetic, and one path-dependent type-size confusion.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16(input, off) {
    return (input[off] << 8) + input[off + 1];
}

fn read_u32(input, off) {
    return (read_u16(input, off) << 16) + read_u16(input, off + 2);
}

fn type_size(kind) {
    if (kind == 1) { return 1; }
    if (kind == 2) { return 1; }
    if (kind == 3) { return 2; }
    if (kind == 4) { return 4; }
    if (kind == 5) { return 8; }
    return 0;
}

fn handle_orientation(value, stats) {
    if (value > 8) { return 0 - 1; }
    stats[value] = stats[value] + 1;
    if (value == 7) {
        var rot = 360 / (value - 7);       // BUG: div 0 at value 7
        return rot;
    }
    return value;
}

fn handle_rational(input, off, n, value) {
    var numer = (input[value] << 8) + input[value + 1];   // BUG: raw offset
    var denom = (input[value + 2] << 8) + input[value + 3];
    if (denom == 0) { return 0; }
    return numer / denom;
}

fn handle_ascii(input, off, count, out) {
    // Path-dependent size confusion: the wide-copy branch is taken when
    // the earlier unicode flag survived; combined with a large count it
    // overruns the 40-byte description buffer.
    var unicode = 0;
    if (count > 15) {
        if ((count & 1) == 0) { unicode = 1; }
    }
    var span = count;
    if (unicode == 1) { span = count * 2; }
    for (var i = 0; i < span; i = i + 1) {
        out[i] = 65;                        // BUG: span vs 40
        if (off + i >= len(input)) { break; }
    }
    return span;
}

fn handle_subifd(input, link, n, depth) {
    if (depth > 3) { return 0 - 1; }
    if (link + 2 > n) { return 0 - 1; }
    return parse_ifd(input, link, n, depth + 1);
}

fn parse_ifd(input, ifd, n, depth) {
    var entries = read_u16(input, ifd);    // BUG: ifd offset unchecked
    if (entries > 12) { entries = 12; }
    var stats = alloc(9);
    var desc = alloc(40);
    var acc = 0;
    var cursor = ifd + 2;
    for (var e = 0; e < entries; e = e + 1) {
        if (cursor + 12 > n) { break; }
        var tag = read_u16(input, cursor);
        var kind = read_u16(input, cursor + 2);
        var count = read_u32(input, cursor + 4);
        var value = read_u32(input, cursor + 8);
        var esize = type_size(kind);
        if (esize == 0) { cursor = cursor + 12; continue; }
        if (tag == 0x0112) {
            acc = acc + handle_orientation(value, stats);
        }
        if (tag == 0x011a) {
            acc = acc + handle_rational(input, cursor, n, value);
        }
        if (tag == 0x010e) {
            acc = acc + handle_ascii(input, value, count, desc);
        }
        if (tag == 0x8769) {
            acc = acc + handle_subifd(input, value, n, depth);
        }
        if (tag == 0x0128) {
            var unit = value % 3;
            acc = acc + 72 / (unit + value / 1000 - 1);  // BUG: unit algebra
        }
        cursor = cursor + 12;
    }
    return acc;
}

fn main(input) {
    var n = len(input);
    if (n < 12) { return 0; }
    if (memcmp(input, 0, "MM", 0, 2) != 0) { return 1; }
    if (read_u16(input, 2) != 42) { return 2; }
    var ifd = read_u32(input, 4);
    if (ifd >= n) { return 3; }
    return parse_ifd(input, ifd, n, 0);
}
"""


def _u16(v):
    return bytes([(v >> 8) & 0xFF, v & 0xFF])


def _u32(v):
    return _u16((v >> 16) & 0xFFFF) + _u16(v & 0xFFFF)


def _entry(tag, kind, count, value):
    return _u16(tag) + _u16(kind) + _u32(count) + _u32(value)


def _tiff(entries, pad=b""):
    return b"MM" + _u16(42) + _u32(8) + _u16(len(entries)) + b"".join(entries) + pad


SEEDS = [
    _tiff([_entry(0x0112, 3, 1, 3), _entry(0x0128, 3, 1, 2)], b"\x00" * 16),
    _tiff([_entry(0x011A, 5, 1, 24)], b"\x00" * 24),
    _tiff([_entry(0x010E, 2, 8, 30), _entry(0x0112, 3, 1, 1)], b"\x00" * 24),
]

TOKENS = [b"MM", b"\x01\x12", b"\x01\x1a", b"\x01\x0e", b"\x87\x69", b"\x01\x28"]


def build():
    orient7 = _tiff([_entry(0x0112, 3, 1, 7)], b"\x00" * 8)
    rational_oob = _tiff([_entry(0x011A, 5, 1, 9000)], b"\x00" * 8)
    # count 46 (even, > 15) -> unicode span 92 > 40.
    ascii_wide = _tiff([_entry(0x010E, 2, 46, 0)], b"\x00" * 64)
    # Main IFD offset pointing at the last byte: the entry-count read runs
    # one byte past the file (faults inside the read_u16 helper).
    subifd_oob = b"MM" + _u16(42) + _u32(15) + b"\x00" * 8
    # Resolution unit algebra: value 1000 -> unit 1, value/1000 = 1 -> 1+1-1
    # = 1 ... need denominator 0: unit + value/1000 - 1 == 0 with value
    # 1002 -> unit 0, 1002/1000 = 1 -> 0.
    unit_div = _tiff([_entry(0x0128, 3, 1, 1002)], b"\x00" * 8)
    return Subject(
        name="exiv2",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "handle_orientation", 22, "division-by-zero",
                "orientation 7 divides by (value - 7)",
                orient7, difficulty="medium",
            ),
            make_bug(
                "handle_rational", 29, "heap-buffer-overflow-read",
                "rational tag value used as a raw file offset",
                rational_oob, difficulty="shallow",
            ),
            make_bug(
                "handle_ascii", 46, "heap-buffer-overflow-write",
                "unicode flag doubles the copy span past the description "
                "buffer (path-dependent flag + count combination)",
                ascii_wide, difficulty="path-dependent",
            ),
            make_bug(
                "read_u16", 2, "heap-buffer-overflow-read",
                "IFD offsets are never bounds-checked before the entry-count "
                "read (faults in the shared read_u16 helper)",
                subifd_oob, difficulty="medium",
            ),
            make_bug(
                "parse_ifd", 87, "division-by-zero",
                "resolution-unit algebra cancels to zero",
                unit_div, difficulty="deep",
            ),
        ],
        tokens=TOKENS,
        max_input_len=192,
        exec_instr_budget=30_000,
        description="TIFF metadata store with typed tag handlers",
    )
