"""Subject ``mujs`` — a tiny script-expression interpreter lookalike.

Tokenizes a calculator-ish expression language and evaluates it on a small
operand stack.  Defects: an operand-stack underflow reachable only through
a specific operator sequence within one evaluation pass (path-dependent), a
string-escape overflow, and an exponentiation shift trap.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn push(stack, sp, value) {
    stack[sp] = value;
    return sp + 1;
}

fn eval_ops(input, pos, n, stack) {
    var sp = 0;
    var dups = 0;
    while (pos < n) {
        var c = input[pos];
        pos = pos + 1;
        if (c >= '0') {
            if (c <= '9') {
                sp = push(stack, sp, c - '0');
                if (sp > 15) { return 0 - 1; }
                continue;
            }
        }
        if (c == '+') {
            // BUG: pops two unconditionally; 'swap-then-add' with one
            // operand underflows only after a preceding 'd' (dup) branch
            // primed dups without pushing.
            var a = stack[sp - 1];
            var b = stack[sp - 2];
            sp = push(stack, sp - 2, a + b);
            continue;
        }
        if (c == 'd') {
            if (sp > 0) {
                sp = push(stack, sp, stack[sp - 1]);
            } else {
                dups = dups + 1;
            }
            continue;
        }
        if (c == 's') {
            if (sp >= 2) {
                var t = stack[sp - 1];
                stack[sp - 1] = stack[sp - 2];
                stack[sp - 2] = t;
            } else {
                sp = sp - dups;            // BUG: dups>0 drives sp negative
                if (sp < 0) {
                    var x = stack[sp + 1]; // underflow read
                    return x;
                }
            }
            continue;
        }
        if (c == '^') {
            if (sp >= 2) {
                var base = stack[sp - 2];
                var exp = stack[sp - 1];
                sp = sp - 2;
                sp = push(stack, sp, base << exp);  // BUG: exp unchecked
            }
            continue;
        }
        if (c == ';') { break; }
    }
    if (sp > 0) { return stack[sp - 1]; }
    return 0;
}

fn parse_string(input, pos, n, out) {
    var outpos = 0;
    while (pos < n) {
        var c = input[pos];
        pos = pos + 1;
        if (c == '"') { return pos; }
        if (c == 92) {
            if (pos < n) {
                out[outpos] = input[pos];  // BUG: outpos vs 16, escapes
                pos = pos + 1;
                outpos = outpos + 1;
            }
            continue;
        }
        outpos = outpos + 1;
        if (outpos > 15) { outpos = 15; }
    }
    return 0 - 1;
}

fn main(input) {
    var n = len(input);
    if (n < 2) { return 0; }
    var stack = alloc(16);
    var strbuf = alloc(16);
    var pos = 0;
    var total = 0;
    while (pos < n) {
        var c = input[pos];
        if (c == '"') {
            var next = parse_string(input, pos + 1, n, strbuf);
            if (next < 0) { break; }
            pos = next;
            continue;
        }
        total = total + eval_ops(input, pos, n, stack);
        while (pos < n) {
            if (input[pos] == ';') { break; }
            pos = pos + 1;
        }
        pos = pos + 1;
    }
    return total;
}
"""

SEEDS = [
    b"12+3+;45s+;",
    b'"abc\\ndef" 7d+;',
    b"3 4 ^ 2 + ; 9 s d ;",
]

TOKENS = [b"+;", b'"', b"\\", b"d", b"s", b"^"]


def build():
    # 'd' on empty stack primes dups, then 's' with sp<2 drives sp negative.
    underflow = b"dds;"
    # '+' with empty stack reads stack[-1] directly.
    plus_underflow = b"+;"
    # '+' with a single operand passes the first pop, underflows the second.
    plus_single = b"1+;"
    # Escape-heavy string: each escape writes out[outpos] without a cap.
    escape = b'"' + b"\\a" * 20 + b'"'
    # 9 << 70: two digits push 7 and 0... craft exp 9: "29^": 2<<9 fine;
    # need exp > 63: push digits then dup-add to grow: simplest is shifting
    # twice: "39^9^" -> (3<<9)=1536... exp still <=9; grow via '+':
    # "99+9+9+9+9+9+9+9+" builds 81; then "2 81 ^" -> but operands are
    # single digits.  "99+" = 18; chain +: 9*8=72 via "99+9+9+9+9+9+9+9+".
    shift = b"99+9+9+9+9+9+9+9+2s^;"
    return Subject(
        name="mujs",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "eval_ops", 44, "heap-buffer-overflow-read",
                "swap after primed dup counter drives the stack pointer "
                "negative (operator-sequence path combination)",
                underflow, difficulty="path-dependent",
            ),
            make_bug(
                "eval_ops", 23, "heap-buffer-overflow-read",
                "binary '+' pops without an arity check (empty stack)",
                plus_underflow, difficulty="shallow",
            ),
            make_bug(
                "eval_ops", 24, "heap-buffer-overflow-read",
                "binary '+' pops without an arity check (single operand "
                "reaches the second pop)",
                plus_single, difficulty="shallow",
            ),
            make_bug(
                "parse_string", 73, "heap-buffer-overflow-write",
                "escape sequences bypass the output-length clamp",
                escape, difficulty="medium",
            ),
            make_bug(
                "eval_ops", 55, "shift-out-of-range",
                "exponent operand used directly as a shift amount",
                shift, difficulty="deep",
            ),
        ],
        tokens=TOKENS,
        max_input_len=128,
        exec_instr_budget=30_000,
        description="expression tokenizer + operand-stack evaluator",
    )
