"""Subject ``lame`` — an MP3 encoder front-end lookalike.

Decodes PCM-ish blocks through a psychoacoustic-flavoured analysis loop
whose per-sample iteration makes several independent decisions (window
switching, scalefactor bands, reservoir state) — the paper's second
queue-explosion subject (37x).  Defects: a scalefactor band index creeping
past its table only under a window-switch + high-energy combination, and a
bit-reservoir division.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn window_kind(sample, prev) {
    var kind = 0;
    if (sample > 200) { kind = 2; } else {
        if (sample > 96) { kind = 1; }
    }
    if (prev == 2) {
        if (kind == 0) { kind = 3; }
    }
    return kind;
}

fn analyze_block(input, off, n, bands, reservoir) {
    var prev = 0;
    var band = 2;
    var energy = 0;
    for (var i = 0; i < 16; i = i + 1) {
        if (off + i >= n) { break; }
        var s = input[off + i];
        var kind = window_kind(s, prev);
        if (s & 1) { energy = energy + 1; }
        if (s & 2) { energy = energy ^ 2; }
        if (s & 4) { band = band + 0; }
        if (s & 8) { energy = energy + prev; }
        if (kind == 2) {
            if (s & 1) { band = band + 2; } else { band = band + 1; }
        }
        if (kind == 3) { band = band - 1; }
        if (kind == 1) { energy = energy + s; }
        if (kind == 0) {
            if (energy > 0) { energy = energy - 1; }
        }
        bands[band] = bands[band] + 1;     // BUG: band can pass 20
        prev = kind;
    }
    var used = energy / 3 + band;
    if (used > reservoir) { return reservoir; }
    return used;
}

fn reservoir_rate(reservoir, frames) {
    return reservoir / (frames - 12);      // BUG: div 0 at frame 12
}

fn main(input) {
    var n = len(input);
    if (n < 8) { return 0; }
    if (memcmp(input, 0, "PCM1", 0, 4) != 0) { return 1; }
    var bands = alloc(20);
    var reservoir = 64;
    var frames = 0;
    var pos = 4;
    while (pos + 4 <= n) {
        var used = analyze_block(input, pos, n, bands, reservoir);
        reservoir = reservoir - used + 8;
        if (reservoir < 0) { reservoir = 0; }
        if (reservoir > 255) { reservoir = 255; }
        frames = frames + 1;
        if (frames >= 12) {
            var rate = reservoir_rate(reservoir, frames);
            if (rate > 40) { break; }
        }
        pos = pos + 16;
    }
    return frames + reservoir;
}
"""

SEEDS = [
    b"PCM1" + bytes(range(0, 120, 5)),
    b"PCM1" + bytes([100, 210, 3, 99, 220, 10] * 8),
    b"PCM1" + bytes([64] * 48),
]

TOKENS = [b"PCM1"]


def build():
    # Blocks dominated by odd high-energy samples: band += 2 per sample.
    creep = b"PCM1" + bytes([211] * 40)
    # Twelve quiet frames reach the reservoir-rate call with frames == 12,
    # dividing by (frames - 12) == 0.
    twelve_frames = b"PCM1" + bytes([3] * 184)
    return Subject(
        name="lame",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "analyze_block", 32, "heap-buffer-overflow-read",
                "scalefactor band index creeps past the 20-entry table "
                "under repeated window-switch + odd-sample iterations "
                "(path-dependent accumulation)",
                creep, difficulty="path-dependent",
            ),
            make_bug(
                "reservoir_rate", 41, "division-by-zero",
                "bit-reservoir rate divides by (frames - 12) on the first "
                "rate check",
                twelve_frames, difficulty="deep",
            ),
        ],
        tokens=TOKENS,
        max_input_len=224,
        exec_instr_budget=35_000,
        description="PCM analysis loop with window switching (path explosion)",
    )
