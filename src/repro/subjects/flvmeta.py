"""Subject ``flvmeta`` — an FLV metadata extractor lookalike.

Parses the FLV container: a signature header, then a sequence of tags
(audio / video / script-data) each carrying a 24-bit payload size.  Two
planted defects: a truncated-tag read past the buffer, and a script-data
string copy that trusts the encoded length.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read24(buf, off) {
    var hi = buf[off];
    var mid = buf[off + 1];
    var lo = buf[off + 2];
    return (hi << 16) + (mid << 8) + lo;
}

fn parse_script_data(input, off, size) {
    // AMF-ish: [type byte][u16 name length][name bytes]...
    if (size < 3) { return 0; }
    var kind = input[off];
    if (kind != 2) { return 0; }
    var namelen = (input[off + 1] << 8) + input[off + 2];
    var name = alloc(32);
    // BUG: copies namelen bytes into a 32-byte buffer
    copy(name, 0, input, off + 3, namelen);
    return name[0] + namelen;
}

fn parse_tag(input, off, n) {
    var kind = input[off];
    var size = read24(input, off + 1);
    var body = off + 11;
    if (kind == 8) {
        // audio: first payload byte encodes format/rate
        var hdr = input[body];            // BUG: no check body < n
        return 11 + size;
    }
    if (kind == 9) {
        if (body + size > n) { return 0 - 1; }
        if (size < 1) { return 0 - 1; }
        var frame = input[body] >> 4;
        if (frame > 5) { return 0 - 1; }
        return 11 + size;
    }
    if (kind == 18) {
        if (body + size > n) { return 0 - 1; }
        parse_script_data(input, body, size);
        return 11 + size;
    }
    return 0 - 1;
}

fn main(input) {
    var n = len(input);
    if (n < 13) { return 0; }
    if (memcmp(input, 0, "FLV", 0, 3) != 0) { return 1; }
    if (input[3] != 1) { return 2; }
    var flags = input[4];
    var pos = 13;
    var tags = 0;
    while (pos + 11 <= n) {
        var advance = parse_tag(input, pos, n);
        if (advance < 0) { break; }
        pos = pos + advance + 4;
        tags = tags + 1;
        if (tags > 64) { break; }
    }
    return tags;
}
"""


def _header():
    return b"FLV\x01\x05\x00\x00\x00\x09" + b"\x00\x00\x00\x00"


def _tag(kind, payload):
    size = len(payload)
    return bytes([kind, (size >> 16) & 0xFF, (size >> 8) & 0xFF, size & 0xFF]) + (
        b"\x00" * 7
    ) + payload + b"\x00\x00\x00\x00"


SEEDS = [
    _header() + _tag(9, b"\x12small video payload"),
    _header() + _tag(18, b"\x02\x00\x04nameXYZ"),
    _header() + _tag(9, b"\x10") + _tag(9, b"\x20abc"),
]

TOKENS = [b"FLV\x01", b"\x12", b"\x02"]


def build():
    # Audio tag whose declared body starts past the end of the buffer.
    truncated = _header() + bytes([8, 0, 0, 4]) + b"\x00" * 7
    truncated = truncated[: len(_header()) + 11]  # cut exactly at body start
    # Script tag declaring a 60-byte name into the 32-byte buffer.
    payload = b"\x02\x00\x3c" + b"N" * 60
    overflow = _header() + _tag(18, payload)
    return Subject(
        name="flvmeta",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_tag",
                26,
                "heap-buffer-overflow-read",
                "audio tag header read without checking the body offset",
                truncated,
                difficulty="shallow",
            ),
            make_bug(
                "parse_script_data",
                16,
                "heap-buffer-overflow-write",
                "script-data name copy trusts the encoded length",
                overflow,
                difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=192,
        exec_instr_budget=20_000,
        description="FLV tag walker with AMF-ish script data",
    )
