"""The paper's motivating example (Figure 1).

``foo`` hides a heap overflow that only triggers when execution reaches the
write *via the rare block* (``j = 3``) **and** the input is long enough and
starts with ``'h'``.  Edge coverage cannot tell the crucial path apart once
all individual edges have been seen; the Ball-Larus path id distinguishes it
(the red path in the paper's figure).

The conditions intentionally use arithmetic conjunction/disjunction instead
of ``&&``/``||`` so the CFG matches the figure: exactly five acyclic paths
in ``foo``.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn foo(input, arr) {
    var N = 54;
    var n = len(input);
    if ((n - 2 > N) + (n < 3)) {
        return 0;
    }
    var j = 0;
    if ((n % 4 == 0) * (n > 39)) {
        j = 3;
    } else {
        j = 0 - 2;
    }
    var c = input[0];
    if (c == 'h') {
        arr[n + j] = 7;
    } else {
        j = abs(j);
        arr[j] = 0;
    }
    return 0;
}

fn main(input) {
    var arr = alloc(54);
    return foo(input, arr);
}
"""

# n = 52: n % 4 == 0 and n > 39 sets j = 3; 'h' leads to arr[55] of 54.
BUG_WITNESS = b"h" + b"A" * 51

SEEDS = [
    b"hello world",
    b"x" * 20,
    b"h" + b"B" * 30,
]


def build():
    """The motivating-example subject (used by examples and tests)."""
    return Subject(
        name="motivating",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "foo",
                15,
                "heap-buffer-overflow-write",
                "write via the rare j=3 block with a long 'h' input "
                "(the paper's Figure 1 red path)",
                BUG_WITNESS,
                difficulty="path-dependent",
            )
        ],
        tokens=[b"h"],
        max_input_len=80,
        exec_instr_budget=20_000,
        description="Paper Figure 1: path-dependent heap overflow",
    )
