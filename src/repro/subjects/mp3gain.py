"""Subject ``mp3gain`` — an MP3 replay-gain analyzer lookalike.

Walks MPEG audio frame headers (0xFFE sync), accumulates a loudness
histogram, and applies a gain computation.  Defects: a histogram index that
only drifts out of range while a rare in-frame path combination repeats
(path-dependent accumulation), plus a samplerate-table division.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn frame_size(bitrate, samplerate) {
    return (144 * bitrate) / samplerate;   // BUG: samplerate 0
}

fn analyze_frame(input, off, n, hist, level) {
    // level creeps +2 only when the frame is both padded AND intensity-
    // stereo (two independent header bits): the rare path combination.
    var hdr2 = input[off + 2];
    var hdr3 = input[off + 3];
    var padded = (hdr2 >> 1) & 1;
    var mode = (hdr3 >> 6) & 3;
    var boost = 0;
    if (padded == 1) {
        if (mode == 1) {
            boost = 2;
        } else {
            boost = 0;
        }
    } else {
        if (mode == 2) { boost = 1; } else { boost = 0; }
    }
    level = level + boost - 1;
    if (level < 0) { level = 0; }
    hist[level] = hist[level] + 1;          // BUG: level can pass 16
    return level;
}

fn main(input) {
    var n = len(input);
    if (n < 8) { return 0; }
    var hist = alloc(16);
    var pos = 0;
    var level = 4;
    var frames = 0;
    while (pos + 4 <= n) {
        if (input[pos] != 0xff) { pos = pos + 1; continue; }
        if ((input[pos + 1] & 0xe0) != 0xe0) { pos = pos + 1; continue; }
        var bitrate_index = input[pos + 2] >> 4;
        var sr_index = (input[pos + 2] >> 2) & 3;
        var samplerate = 44100;
        if (sr_index == 1) { samplerate = 48000; }
        if (sr_index == 2) { samplerate = 32000; }
        if (sr_index == 3) { samplerate = 0; }
        var size = frame_size(bitrate_index * 8 + 8, samplerate);
        level = analyze_frame(input, pos, n, hist, level);
        frames = frames + 1;
        if (frames > 24) { break; }
        pos = pos + 4 + size;
    }
    var gain = 0;
    for (var i = 0; i < 16; i = i + 1) {
        gain = gain + hist[i] * i;
    }
    return gain + frames;
}
"""


def _frame(padded=0, mode=0, bitrate=4, sr=0, body=0):
    b2 = (bitrate << 4) | (sr << 2) | (padded << 1)
    b3 = mode << 6
    return bytes([0xFF, 0xE2, b2, b3]) + b"\x00" * body


SEEDS = [
    _frame(bitrate=4) + _frame(bitrate=4) + _frame(bitrate=4),
    _frame(padded=1, mode=2) + _frame(mode=2),
    b"\x00\x12" + _frame(bitrate=2) + _frame(bitrate=2) + b"\x01",
]

TOKENS = [b"\xff\xe2", b"\xff\xe0"]


def build():
    # 14 consecutive padded+intensity frames push level from 4 past 16.
    creep = b"".join(_frame(padded=1, mode=1, bitrate=0) for _ in range(16))
    sr_zero = _frame(sr=3, body=8)
    return Subject(
        name="mp3gain",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "analyze_frame", 24, "heap-buffer-overflow-read",
                "loudness level creeps past the 16-entry histogram only "
                "while padded+intensity frames repeat (path-dependent "
                "accumulation)",
                creep, difficulty="path-dependent",
            ),
            make_bug(
                "frame_size", 2, "division-by-zero",
                "reserved samplerate index yields samplerate 0",
                sr_zero, difficulty="shallow",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=25_000,
        description="MPEG frame walker with loudness histogram",
    )
