"""Subject ``jq`` — a recursive-descent JSON parser lookalike.

The paper finds exactly one jq bug per fuzzer; here the single defect is a
stack overflow on deeply nested arrays/objects (the parser recurses without
a depth guard), which the VM reports as a stack-overflow trap at the
recursive call site.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn skip_ws(input, pos, n) {
    while (pos < n) {
        var c = input[pos];
        if (c != ' ') {
            if (c != 10) {
                if (c != 9) { break; }
            }
        }
        pos = pos + 1;
    }
    return pos;
}

fn parse_string(input, pos, n) {
    // pos points at the opening quote
    pos = pos + 1;
    while (pos < n) {
        var c = input[pos];
        if (c == '"') { return pos + 1; }
        if (c == 92) { pos = pos + 1; }
        pos = pos + 1;
    }
    return 0 - 1;
}

fn parse_number(input, pos, n) {
    var seen = 0;
    while (pos < n) {
        var c = input[pos];
        if (c >= '0') {
            if (c <= '9') {
                seen = 1;
                pos = pos + 1;
                continue;
            }
        }
        if (c == '.') { pos = pos + 1; continue; }
        if (c == '-') { pos = pos + 1; continue; }
        break;
    }
    if (seen == 0) { return 0 - 1; }
    return pos;
}

fn parse_value(input, pos, n) {
    pos = skip_ws(input, pos, n);
    if (pos >= n) { return 0 - 1; }
    var c = input[pos];
    if (c == '"') { return parse_string(input, pos, n); }
    if (c == '[') {
        pos = pos + 1;
        pos = skip_ws(input, pos, n);
        if (pos < n) {
            if (input[pos] == ']') { return pos + 1; }
        }
        while (1) {
            pos = parse_value(input, pos, n);    // BUG: unbounded recursion
            if (pos < 0) { return 0 - 1; }
            pos = skip_ws(input, pos, n);
            if (pos >= n) { return 0 - 1; }
            if (input[pos] == ']') { return pos + 1; }
            if (input[pos] != ',') { return 0 - 1; }
            pos = pos + 1;
        }
    }
    if (c == '{') {
        pos = pos + 1;
        pos = skip_ws(input, pos, n);
        if (pos < n) {
            if (input[pos] == '}') { return pos + 1; }
        }
        while (1) {
            pos = skip_ws(input, pos, n);
            if (pos >= n) { return 0 - 1; }
            if (input[pos] != '"') { return 0 - 1; }
            pos = parse_string(input, pos, n);
            if (pos < 0) { return 0 - 1; }
            pos = skip_ws(input, pos, n);
            if (pos >= n) { return 0 - 1; }
            if (input[pos] != ':') { return 0 - 1; }
            pos = parse_value(input, pos + 1, n);
            if (pos < 0) { return 0 - 1; }
            pos = skip_ws(input, pos, n);
            if (pos >= n) { return 0 - 1; }
            if (input[pos] == '}') { return pos + 1; }
            if (input[pos] != ',') { return 0 - 1; }
            pos = pos + 1;
        }
    }
    if (c == 't') {
        if (pos + 4 <= n) {
            if (memcmp(input, pos, "true", 0, 4) == 0) { return pos + 4; }
        }
        return 0 - 1;
    }
    if (c == 'f') {
        if (pos + 5 <= n) {
            if (memcmp(input, pos, "false", 0, 5) == 0) { return pos + 5; }
        }
        return 0 - 1;
    }
    if (c == 'n') {
        if (pos + 4 <= n) {
            if (memcmp(input, pos, "null", 0, 4) == 0) { return pos + 4; }
        }
        return 0 - 1;
    }
    return parse_number(input, pos, n);
}

fn main(input) {
    var n = len(input);
    if (n == 0) { return 0; }
    var end = parse_value(input, 0, n);
    if (end < 0) { return 1; }
    end = skip_ws(input, end, n);
    if (end != n) { return 2; }
    return 0;
}
"""

SEEDS = [
    b'{"name": "value", "list": [1, 2, 3]}',
    b"[true, false, null, 42]",
    b'[[1, 2], {"a": [3]}]',
]

TOKENS = [b"true", b"false", b"null", b"[", b"{", b'"']


def build():
    deep = b"[" * 40
    return Subject(
        name="jq",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_value",
                46,
                "stack-overflow",
                "array parsing recurses without a depth guard",
                deep,
                difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=128,
        exec_instr_budget=25_000,
        call_depth_limit=24,
        description="recursive-descent JSON parser",
    )
