"""Subject ``gdk`` — a pixbuf loader dispatcher lookalike.

Sniffs the image format by magic (BMP / GIF / PNM), decodes a header per
loader, and feeds everything into a shared scaler.  This subject carries
the suite's largest bug census (the paper's gdk yields 7-11 bugs): per-
loader arithmetic defects plus a *path-dependent* stride confusion in the
shared scaler, whose trigger state (flip + palette mode) is set by two
independent conditionals earlier in the same activation.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16le(buf, off) {
    return buf[off] + (buf[off + 1] << 8);
}

fn scale_row(out, width, stride, flip, pal) {
    // Path-dependent: flip shifts the base, palette doubles the stride.
    var base = 0;
    if (flip == 1) { base = width - 1; }
    var step = stride;
    if (pal == 1) { step = stride * 2; }
    var limit = len(out);
    for (var x = 0; x < width; x = x + 1) {
        var at = base + x * step;
        out[at] = x;          // BUG: flip+palette combination overflows
    }
    return 0;
}

fn load_bmp(input, n) {
    if (n < 18) { return 0 - 1; }
    var width = read_u16le(input, 4);
    var height = read_u16le(input, 6);
    var bpp = input[8];
    var flip = 0;
    if (input[9] == 1) { flip = 1; }
    if (width == 0) { return 0 - 1; }
    if (width > 24) { return 0 - 1; }
    var pal = 0;
    if (bpp == 8) { pal = 1; }
    var row = alloc(width * 2);
    scale_row(row, width, 1, flip, pal);
    var body = 10 + width;
    var acc = 0;
    for (var y = 0; y < height; y = y + 1) {
        acc = acc + input[body + y];       // BUG: height unchecked vs n
    }
    return acc;
}

fn load_gif(input, n) {
    if (n < 13) { return 0 - 1; }
    var width = read_u16le(input, 6);
    var height = read_u16le(input, 8);
    var flags = input[10];
    var table_bits = flags & 7;
    var table_size = 1 << table_bits;
    var palette = alloc(128);
    var cursor = 13;
    for (var i = 0; i < table_size * 3; i = i + 1) {
        palette[i] = input[cursor];        // BUG: palette fits only 2^5*3+
        cursor = cursor + 1;
        if (cursor >= n) { break; }
    }
    if (width * height > 4096) {
        var denom = width - height;
        return 4096 / denom;               // BUG: div 0 for square images
    }
    return table_size;
}

fn load_pnm(input, n) {
    if (n < 8) { return 0 - 1; }
    var width = 0;
    var pos = 2;
    while (pos < n) {
        var c = input[pos];
        if (c < '0') { break; }
        if (c > '9') { break; }
        width = width * 10 + (c - '0');
        pos = pos + 1;
    }
    if (width == 0) { return 0 - 1; }
    var maxval = input[pos];
    var lut = alloc(256);
    var span = 255 / maxval;               // BUG: div 0 when maxval == 0
    for (var v = 0; v < 256; v = v + 1) {
        lut[v] = v * span;
    }
    if (width > 250) {
        lut[width] = 1;                    // BUG: width 256.. overflows lut
    }
    return width;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    if (memcmp(input, 0, "BM", 0, 2) == 0) { return load_bmp(input, n); }
    if (memcmp(input, 0, "GIF8", 0, 4) == 0) { return load_gif(input, n); }
    if (input[0] == 'P') {
        if (input[1] == '6') { return load_pnm(input, n); }
    }
    return 0 - 9;
}
"""


def _u16le(v):
    return bytes([v & 0xFF, (v >> 8) & 0xFF])


def _bmp(width, height, bpp=24, flip=0, body=b""):
    return (
        b"BM\x00\x00" + _u16le(width) + _u16le(height) + bytes([bpp, flip]) + body
    )


SEEDS = [
    _bmp(8, 2, body=b"\x10" * 24),
    b"GIF89a" + _u16le(10) + _u16le(10) + b"\x82\x00\x00" + b"\x11" * 24,
    b"P6 12 0xff " + b"\x40" * 12,
]

TOKENS = [b"BM", b"GIF8", b"P6", b"\x08"]


def build():
    # flip=1, pal=1 (bpp 8): base=width-1, step=2 -> at up to 3*(w-1) > 2w.
    stride_bug = _bmp(8, 0, bpp=8, flip=1, body=b"\x00" * 16)
    # BMP with large height walks past the buffer.
    tall_bmp = _bmp(4, 4000, body=b"\x01" * 8)
    # GIF with table_bits=7 -> 128*3 entries into a 128-byte palette.
    gif_palette = b"GIF89a" + _u16le(3) + _u16le(3) + b"\x87\x00\x00" + b"\x22" * 200
    # GIF of exactly 13 bytes: the first palette read is already past EOF.
    gif_truncated = b"GIF89a" + _u16le(3) + _u16le(3) + b"\x80\x00\x00"
    # Square image wider than 64: width*height>4096 and width==height.
    gif_square = b"GIF89a" + _u16le(70) + _u16le(70) + b"\x80\x00\x00" + b"\x00" * 8
    # PNM with maxval byte 0 right after the width digits.
    pnm_maxval = b"P6" + b"12" + b"\x00" + b"\x00" * 8
    # PNM with width 256 indexes the 256-entry LUT.
    pnm_wide = b"P6" + b"256" + b"\x05" + b"\x00" * 8
    return Subject(
        name="gdk",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "scale_row", 14, "heap-buffer-overflow-write",
                "flip base + doubled palette stride overflow the row "
                "(combination set by two earlier conditionals: the "
                "path-dependent defect)",
                stride_bug, difficulty="path-dependent",
            ),
            make_bug(
                "load_bmp", 35, "heap-buffer-overflow-read",
                "row loop trusts the declared height",
                tall_bmp, difficulty="shallow",
            ),
            make_bug(
                "load_gif", 50, "heap-buffer-overflow-write",
                "global color table size 2^bits*3 overflows the palette",
                gif_palette, difficulty="medium",
            ),
            make_bug(
                "load_gif", 50, "heap-buffer-overflow-read",
                "palette copy reads the first table byte before checking "
                "the cursor against EOF",
                gif_truncated, difficulty="shallow",
            ),
            make_bug(
                "load_gif", 56, "division-by-zero",
                "large square images divide by (width - height)",
                gif_square, difficulty="medium",
            ),
            make_bug(
                "load_pnm", 75, "division-by-zero",
                "LUT construction divides by maxval",
                pnm_maxval, difficulty="shallow",
            ),
            make_bug(
                "load_pnm", 80, "heap-buffer-overflow-write",
                "width >= 256 indexes the 256-entry LUT",
                pnm_wide, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=224,
        exec_instr_budget=30_000,
        description="image loader dispatch (BMP/GIF/PNM) with shared scaler",
    )
