"""Subject ``infotocap`` — a terminfo-to-termcap translator lookalike.

The paper's pathological queue-explosion subject (path queues 62x larger
than pcguard's): the capability-string translator is a single hot loop with
*many* independent per-iteration branch decisions (escape kinds, parameter
forms, padding digits), so the number of distinct Ball-Larus iteration
paths is enormous while the edge set saturates almost immediately.  Bugs
skew toward the deeper marker handling, which the throughput-starved
path-aware baseline tends to miss — matching the paper (pcguard 5, path 2).
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn translate_cap(input, pos, n, out, outpos) {
    // Translate one capability value until ',' — the path-explosion loop:
    // each iteration makes many independent decisions (the escape route
    // plus five attribute bit tests), so the per-iteration acyclic path
    // space is combinatorial while the edge set saturates immediately.
    var params = 0;
    var pad = 0;
    var attrs = 0;
    while (pos < n) {
        var c = input[pos];
        if (c == ',') { return pos + 1; }
        if (c & 1) { attrs = attrs + 1; }
        if (c & 2) { attrs = attrs + 2; }
        if (c & 4) { params = params + 1; }
        if (c & 8) { pad = pad + 1; }
        if (c & 16) { attrs = attrs ^ pad; }
        if (c == '%') {
            pos = pos + 1;
            if (pos >= n) { return n; }
            var spec = input[pos];
            if (spec == 'p') { params = params + 1; }
            if (spec == 'd') { out[outpos % 64] = 'd'; outpos = outpos + 1; }
            if (spec == 'i') { params = params + 2; }
            if (spec == '+') { out[outpos] = '+'; outpos = outpos + 1; }
            if (spec == '%') { out[outpos % 64] = '%'; outpos = outpos + 1; }
            if (spec == '{') { pad = pad + 1; }
            if (spec == '}') { pad = pad - 1; }
        } else {
            if (c == '$') {
                pad = pad * 2 + 1;
                if (pad > 500) {
                    var rate = 1000 / (pad - 511);
                }
            } else {
                if (c >= '0') {
                    if (c <= '9') {
                        pad = pad + (c - '0');
                    } else {
                        out[outpos % 64] = c;
                        outpos = outpos + 1;
                    }
                } else {
                    out[outpos % 64] = c;
                    outpos = outpos + 1;
                }
            }
        }
        pos = pos + 1;
    }
    return n;
}

fn parse_name(input, pos, n) {
    while (pos < n) {
        var c = input[pos];
        if (c == '=') { return pos + 1; }
        if (c == ',') { return 0 - (pos + 1); }
        if (c == 10) { return 0 - (pos + 1); }
        pos = pos + 1;
    }
    return 0 - n;
}

fn handle_numeric(input, pos, n, table, slot) {
    var value = 0;
    while (pos < n) {
        var c = input[pos];
        if (c < '0') { break; }
        if (c > '9') { break; }
        value = value * 10 + (c - '0');
        pos = pos + 1;
    }
    table[slot] = value;               // BUG: slot grows past 12 entries
    if (value > 4000) {
        var q = 100000 / (value - 4096);   // BUG: deep div at 4096
        return q;
    }
    return value;
}

fn main(input) {
    var n = len(input);
    if (n < 3) { return 0; }
    var out = alloc(64);
    var table = alloc(12);
    var pos = 0;
    var caps = 0;
    var numerics = 0;
    while (pos < n) {
        var eq = parse_name(input, pos, n);
        if (eq < 0) { pos = 0 - eq; continue; }
        pos = eq;
        if (pos < n) {
            var first = input[pos];
            if (first == '#') {
                handle_numeric(input, pos + 1, n, table, numerics);
                numerics = numerics + 1;
                while (pos < n) {
                    if (input[pos] == ',') { break; }
                    pos = pos + 1;
                }
                pos = pos + 1;
            } else {
                pos = translate_cap(input, pos, n, out, 0);
            }
        }
        caps = caps + 1;
        if (caps > 48) { break; }
    }
    return caps + numerics;
}
"""

SEEDS = [
    b"cup=%p1%d;%p2%d,clear=%{1}%+%%,cols=#80,",
    b"bel=$07,lines=#24,home=%i%d,",
    b"smso=%p1%{2}%+abc,rmso=xyz$9,",
]

TOKENS = [b"%p", b"%d", b"%{", b"%%", b"=#", b",", b"=%"]


def build():
    # 13 numeric capabilities overflow the 12-entry table.
    many_numerics = b"".join(b"x%d=#%d," % (i, i) for i in range(14))
    # A numeric value of exactly 4096 after the deep '#' route.
    deep_div = b"pad=#4096,"
    # 65+ '%+' emissions bypass the output wrap in one capability value.
    plus_overflow = b"k=" + b"%+" * 70 + b","
    # Nine '$' doublings land pad exactly on 511.
    dollar_pad = b"k=" + b"$" * 9 + b","
    return Subject(
        name="infotocap",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "handle_numeric", 73, "heap-buffer-overflow-write",
                "numeric-capability slots exceed the 12-entry table",
                many_numerics, difficulty="medium",
            ),
            make_bug(
                "handle_numeric", 75, "division-by-zero",
                "large numeric capability divides by (value - 4096)",
                deep_div, difficulty="deep",
            ),
            make_bug(
                "translate_cap", 24, "heap-buffer-overflow-write",
                "the '%+' emission skips the output-position wrap",
                plus_overflow, difficulty="medium",
            ),
            make_bug(
                "translate_cap", 32, "division-by-zero",
                "padding-delay doubling divides at exactly 511",
                dollar_pad, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=224,
        exec_instr_budget=35_000,
        description="terminfo capability translator (path explosion)",
    )
