"""Subject ``jhead`` — a JPEG/EXIF header digester lookalike.

Walks JPEG markers (0xFF xx with big-endian segment lengths), descends into
the EXIF APP1 payload, and decodes a couple of tag kinds.  Six planted
defects of mostly shallow-to-medium difficulty, matching the paper's jhead
where every fuzzer converges on about the same bug set.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16(buf, off) {
    return (buf[off] << 8) + buf[off + 1];
}

fn parse_app1(input, off, seglen, n) {
    if (seglen < 10) { return 0; }
    if (memcmp(input, off, "Exif", 0, 4) != 0) { return 0; }
    var tiff = off + 6;
    var entries = read_u16(input, tiff);
    var cursor = tiff + 2;
    var thumb = alloc(16);
    var acc = 0;
    for (var i = 0; i < entries; i = i + 1) {
        var tag = read_u16(input, cursor);         // BUG: cursor unchecked
        var value = read_u16(input, cursor + 2);
        if (tag == 0x0112) {
            if (value > 8) {
                var orient = 8 / (value - 9);      // BUG: div 0 at value 9
                acc = acc + orient;
            }
        }
        if (tag == 0x0201) {
            thumb[value] = 1;                      // BUG: unchecked index
        }
        if (tag == 0x0202) {
            acc = acc + input[off + value];        // BUG: offset read
        }
        cursor = cursor + 4;
    }
    return acc;
}

fn parse_sof(input, off, n) {
    if (off + 7 >= n) { return 0 - 1; }
    var height = read_u16(input, off + 1);
    var width = read_u16(input, off + 3);
    var comps = input[off + 5];
    if (comps > 4) { return 0 - 1; }
    var table = alloc(4);
    for (var c = 0; c < comps; c = c + 1) {
        table[c] = input[off + 6 + c];             // comps <= 4: safe
    }
    if (width == 0) { return 0 - 1; }
    return height / width;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    if (input[0] != 0xff) { return 1; }
    if (input[1] != 0xd8) { return 1; }
    var pos = 2;
    var found = 0;
    while (pos + 4 <= n) {
        if (input[pos] != 0xff) { return 0 - 2; }
        var marker = input[pos + 1];
        var seglen = read_u16(input, pos + 2);
        if (seglen < 2) { return 0 - 3; }
        if (marker == 0xe1) {
            found = found + parse_app1(input, pos + 4, seglen - 2, n);
        }
        if (marker == 0xc0) {
            var ratio = parse_sof(input, pos + 4, n);
            if (ratio > 100) {
                var t = alloc(8);
                t[ratio - 101] = 2;                // BUG: tall-image index
            }
        }
        if (marker == 0xd9) { break; }
        pos = pos + 2 + seglen;
    }
    return found;
}
"""


def _seg(marker, payload):
    seglen = len(payload) + 2
    return bytes([0xFF, marker, (seglen >> 8) & 0xFF, seglen & 0xFF]) + payload


def _exif(entries_bytes, count):
    return b"Exif\x00\x00" + bytes([0, count]) + entries_bytes


def _entry(tag, value):
    return bytes([(tag >> 8) & 0xFF, tag & 0xFF, (value >> 8) & 0xFF, value & 0xFF])


SOI = b"\xff\xd8"

SEEDS = [
    SOI + _seg(0xE1, _exif(_entry(0x0112, 3) + _entry(0x0100, 64), 2)) + b"\xff\xd9\x00\x00",
    SOI + _seg(0xC0, b"\x08\x00\x40\x00\x40\x03\x01\x02\x03") + b"\xff\xd9\x00\x00",
    SOI + _seg(0xE0, b"JFIF\x00") + b"\xff\xd9\x00\x00",
]

TOKENS = [b"Exif", b"\xff\xd8", b"\xff\xe1", b"\xff\xc0", b"\x01\x12", b"\x02\x01"]


def build():
    cursor_oob = SOI + _seg(0xE1, _exif(_entry(0x0100, 1), 40)) + b"\xff\xd9"
    div_zero = SOI + _seg(0xE1, _exif(_entry(0x0112, 9), 1)) + b"\xff\xd9\x00\x00"
    thumb_oob = SOI + _seg(0xE1, _exif(_entry(0x0201, 300), 1)) + b"\xff\xd9\x00\x00"
    offset_read = SOI + _seg(0xE1, _exif(_entry(0x0202, 5000), 1)) + b"\xff\xd9\x00\x00"
    # SOF with height 60000, width 2 -> ratio 30000 -> index 29899 of 8.
    tall = SOI + _seg(0xC0, b"\x08\xea\x60\x00\x02\x01\x05\x00\x00") + b"\xff\xd9\x00\x00"
    return Subject(
        name="jhead",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "read_u16", 2, "heap-buffer-overflow-read",
                "IFD cursor walks past the buffer for large entry counts",
                cursor_oob, difficulty="shallow",
            ),
            make_bug(
                "parse_app1", 18, "division-by-zero",
                "orientation normalization divides by (value - 9)",
                div_zero, difficulty="medium",
            ),
            make_bug(
                "parse_app1", 23, "heap-buffer-overflow-write",
                "thumbnail-offset tag indexes a 16-byte table unchecked",
                thumb_oob, difficulty="shallow",
            ),
            make_bug(
                "parse_app1", 26, "heap-buffer-overflow-read",
                "thumbnail-length tag used as a raw file offset",
                offset_read, difficulty="shallow",
            ),
            make_bug(
                "main", 66, "heap-buffer-overflow-write",
                "extreme aspect ratio indexes an 8-entry table",
                tall, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=25_000,
        description="JPEG marker walker with EXIF IFD decoding",
    )
