"""Subject (program-under-test) abstraction.

A :class:`Subject` bundles a MiniC source, fuzzing seeds, a dictionary of
format tokens, per-subject engine limits, and a *bug census*: the planted
defects with crashing witness inputs.  The census makes the synthetic suite
honest — tests assert every census bug is real (its witness crashes at
exactly the declared site) and distinct.
"""

from repro.lang import compile_source
from repro.runtime.interpreter import execute
from repro.triage.bugs import Bug


class Subject:
    """One benchmark program."""

    def __init__(
        self,
        name,
        source,
        seeds,
        bugs,
        tokens=(),
        max_input_len=256,
        exec_instr_budget=60_000,
        call_depth_limit=64,
        description="",
    ):
        self.name = name
        self.source = source
        self.seeds = [bytes(s) for s in seeds]
        self.bugs = list(bugs)
        self.tokens = tuple(bytes(t) for t in tokens)
        self.max_input_len = max_input_len
        self.exec_instr_budget = exec_instr_budget
        self.call_depth_limit = call_depth_limit
        self.description = description
        self._program = None

    @property
    def program(self):
        """The compiled ProgramCFG (compiled once, cached)."""
        if self._program is None:
            self._program = compile_source(self.source, self.name)
        return self._program

    def run(self, data, **kwargs):
        """Execute the subject on ``data`` without instrumentation."""
        kwargs.setdefault("instr_budget", self.exec_instr_budget)
        kwargs.setdefault("call_depth_limit", self.call_depth_limit)
        return execute(self.program, bytes(data), None, **kwargs)

    def verify_census(self):
        """Check the bug census against the implementation.

        Returns a list of problem strings (empty when the census is sound):
        each witness must crash, at the declared (function, line, kind).
        Seeds must not crash or hang.
        """
        problems = []
        for seed in self.seeds:
            result = self.run(seed)
            if result.crashed:
                problems.append(
                    "%s: seed %r crashes (%s)" % (self.name, seed[:16], result.trap)
                )
            if result.timeout:
                problems.append("%s: seed %r hangs" % (self.name, seed[:16]))
        seen = set()
        for bug in self.bugs:
            result = self.run(bug.witness)
            if not result.crashed:
                problems.append(
                    "%s: witness for %r does not crash" % (self.name, bug.bug_id)
                )
                continue
            actual = result.trap.bug_id()
            if actual != bug.bug_id:
                problems.append(
                    "%s: witness for %r crashes at %r instead"
                    % (self.name, bug.bug_id, actual)
                )
            if bug.bug_id in seen:
                problems.append("%s: duplicate census entry %r" % (self.name, bug.bug_id))
            seen.add(bug.bug_id)
        return problems

    def __repr__(self):
        return "Subject(%s: %d seeds, %d bugs)" % (
            self.name,
            len(self.seeds),
            len(self.bugs),
        )


def make_bug(function, line, kind, description, witness, difficulty="medium"):
    """Convenience constructor matching Trap.bug_id() layout."""
    return Bug((function, line, kind), description, witness, difficulty)
