"""Subject ``mp42aac`` — an MP4-to-AAC extractor lookalike.

Walks the MP4 box tree (size/fourcc headers, nested containers), tracks the
audio track configuration, and extracts sample chunks.  The census mirrors
the paper's mp42aac (7-8 bugs, two zero-days found by path-aware runs):
box-size arithmetic defects, a recursion bomb, and a path-dependent sample-
size confusion primed by the ordering of 'esds' vs 'stsz' handling inside
one 'stbl' activation.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u32(input, off) {
    return (input[off] << 24) + (input[off + 1] << 16)
         + (input[off + 2] << 8) + input[off + 3];
}

fn fourcc_is(input, off, name) {
    return memcmp(input, off, name, 0, 4) == 0;
}

fn parse_esds(input, off, size, config) {
    if (size < 4) { return 0 - 1; }
    var object_type = input[off];
    var freq_index = input[off + 1] >> 3;
    config[0] = object_type;
    config[1] = freq_index;
    var table = alloc(13);
    table[freq_index] = 1;                  // BUG: freq index 13..31
    if (object_type == 31) {
        var ext = input[off + 2] & 63;
        var rate = 96000 >> ext;            // ok: ext <= 63
        if (rate == 0) { return 0 - 1; }
        return 96000 / rate;
    }
    return object_type;
}

fn parse_stsz(input, off, size, config, samples) {
    if (size < 8) { return 0 - 1; }
    var uniform = read_u32(input, off);
    var count = read_u32(input, off + 4);
    // Path-dependent: the wide-sample branch survives from the esds
    // object type recorded earlier in this stbl activation.
    var width = 1;
    if (config[0] == 64) { width = 4; }
    if (uniform == 0) {
        for (var s = 0; s < count; s = s + 1) {
            samples[s * width] = s;         // BUG: combo width overflow
            if (s > 10) { break; }
        }
    }
    return count;
}

fn parse_stbl(input, off, end, n, config, depth) {
    var samples = alloc(24);
    var acc = 0;
    var pos = off;
    while (pos + 8 <= end) {
        var size = read_u32(input, pos);
        if (size < 8) { return 0 - 1; }
        var body = pos + 8;
        if (fourcc_is(input, pos + 4, "esds")) {
            acc = acc + parse_esds(input, body, size - 8, config);
        }
        if (fourcc_is(input, pos + 4, "stsz")) {
            acc = acc + parse_stsz(input, body, size - 8, config, samples);
        }
        if (fourcc_is(input, pos + 4, "stco")) {
            var chunk_off = read_u32(input, body);
            acc = acc + input[chunk_off];   // BUG: raw chunk offset
        }
        pos = pos + size;
    }
    return acc;
}

fn parse_container(input, pos, n, config, depth) {
    // Track-level containers route through this wrapper (as real demuxers
    // layer stream setup), so each trak nesting costs two stack frames.
    return parse_box(input, pos, n, config, depth);
}

fn parse_box(input, pos, n, config, depth) {
    if (pos + 8 > n) { return 0 - 1; }
    var size = read_u32(input, pos);
    if (size < 8) { return 0 - 1; }
    var end = pos + size;
    if (end > n) { end = n; }
    var body = pos + 8;
    if (fourcc_is(input, pos + 4, "moov")) {
        var acc = 0;
        var child = body;
        while (child + 8 <= end) {
            var adv = parse_box(input, child, end, config, depth + 1);
            if (adv < 8) { break; }
            child = child + adv;
        }
        return size;
    }
    if (fourcc_is(input, pos + 4, "trak")) {
        return 8 + parse_container(input, body, end, config, depth + 1);  // BUG: no depth cap
    }
    if (fourcc_is(input, pos + 4, "stbl")) {
        var r = parse_stbl(input, body, end, n, config, depth);
        if (r < 0) { return 0 - 1; }
        return size;
    }
    if (fourcc_is(input, pos + 4, "mdat")) {
        var declared = size - 8;
        var payload = alloc(32);
        copy(payload, 0, input, body, declared);   // BUG: declared vs 32
        return size;
    }
    return size;
}

fn main(input) {
    var n = len(input);
    if (n < 16) { return 0; }
    if (fourcc_is(input, 4, "ftyp") == 0) { return 1; }
    var config = alloc(2);
    var pos = read_u32(input, 0);
    if (pos < 8) { return 2; }
    var guard = 0;
    while (pos + 8 <= n) {
        var adv = parse_box(input, pos, n, config, 0);
        if (adv < 8) { break; }
        pos = pos + adv;
        guard = guard + 1;
        if (guard > 16) { break; }
    }
    return config[0] + config[1];
}
"""


def _u32(v):
    return bytes([(v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF])


def _box(fourcc, payload):
    return _u32(len(payload) + 8) + fourcc + payload


def _ftyp():
    return _box(b"ftyp", b"isom0000")


SEEDS = [
    _ftyp() + _box(b"moov", _box(b"trak", _box(b"stbl",
        _box(b"esds", b"\x40\x20\x00\x00") + _box(b"stsz", _u32(1) + _u32(4))))),
    _ftyp() + _box(b"mdat", b"\x00" * 12),
    _ftyp() + _box(b"moov", _box(b"stbl", _box(b"stco", _u32(4) + b"\x00" * 4))),
]

TOKENS = [b"ftyp", b"moov", b"trak", b"stbl", b"esds", b"stsz", b"stco", b"mdat"]


def build():
    # freq index 13+ overflows the 13-entry frequency table.
    freq_oob = _ftyp() + _box(b"moov", _box(b"stbl",
        _box(b"esds", b"\x10\x70\x00\x00")))
    # esds object type 64 primes width 4; stsz uniform 0 with 7+ samples
    # writes samples[6*4] = 24 past the 24-entry buffer.
    combo = _ftyp() + _box(b"moov", _box(b"stbl",
        _box(b"esds", b"\x40\x18\x00\x00")
        + _box(b"stsz", _u32(0) + _u32(8))))
    # stco chunk offset pointing far outside the file.
    stco_oob = _ftyp() + _box(b"moov", _box(b"stbl",
        _box(b"stco", _u32(7000) + b"\x00" * 4)))
    # Deep trak nesting recurses past the call-depth limit (two frames per
    # level through parse_container).
    deep = _ftyp()
    inner = _box(b"stbl", b"")
    for _ in range(32):
        inner = _box(b"trak", inner)
    deep = deep + inner
    # mdat with a huge declared size copied into the 32-byte buffer.
    mdat = _ftyp() + _box(b"mdat", b"\x00" * 40)
    return Subject(
        name="mp42aac",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_esds", 17, "heap-buffer-overflow-write",
                "sampling-frequency index indexes a 13-entry table",
                freq_oob, difficulty="medium",
            ),
            make_bug(
                "parse_stsz", 37, "heap-buffer-overflow-write",
                "AAC-main object type widens the sample stride; with a "
                "non-uniform stsz the combination overflows (path-dependent)",
                combo, difficulty="path-dependent",
            ),
            make_bug(
                "parse_stbl", 60, "heap-buffer-overflow-read",
                "chunk offset used as a raw file offset",
                stco_oob, difficulty="shallow",
            ),
            make_bug(
                "parse_box", 75, "stack-overflow",
                "trak containers recurse without a depth cap",
                deep, difficulty="medium",
            ),
            make_bug(
                "parse_box", 101, "heap-buffer-overflow-write",
                "mdat copy trusts the declared box size",
                mdat, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=300,
        exec_instr_budget=35_000,
        description="MP4 box-tree walker with AAC track extraction",
    )
