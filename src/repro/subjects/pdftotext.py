"""Subject ``pdftotext`` — a PDF text extractor lookalike.

Scans indirect objects, string literals with escapes, dictionaries with
nested depth, an xref table, and a font-encoding translator.  The paper's
pdftotext is where culling shines brightest (cull 18 bugs vs pcguard 10);
the census is correspondingly the suite's largest and most varied: shallow
scanner defects, escape-state combinations, xref offset arithmetic, and
font-flag interactions.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn parse_string_lit(input, pos, n, out) {
    // (...) literal with backslash escapes and nested parens.
    var depth = 1;
    var outpos = 0;
    var octal = 0;
    while (pos < n) {
        var c = input[pos];
        pos = pos + 1;
        if (c == 92) {
            if (pos >= n) { break; }
            var e = input[pos];
            pos = pos + 1;
            if (e >= '0') {
                if (e <= '7') {
                    octal = octal * 8 + (e - '0');
                    out[octal] = 1;            // BUG: octal accumulates
                    continue;
                }
            }
            out[outpos] = e;
            outpos = outpos + 1;
            continue;
        }
        if (c == '(') { depth = depth + 1; }
        if (c == ')') {
            depth = depth - 1;
            if (depth == 0) { return pos; }
        }
        outpos = outpos + 1;
        if (outpos > 30) { outpos = 30; }
    }
    return 0 - 1;
}

fn parse_dict(input, pos, n, depth) {
    // << /Name value ... >> with nesting
    if (depth > 6) {
        var probe = input[pos + 9000];          // BUG: depth-7 sentinel
        return 0 - probe;
    }
    while (pos + 1 < n) {
        var c = input[pos];
        if (c == '<') {
            if (input[pos + 1] == '<') {
                pos = parse_dict(input, pos + 2, n, depth + 1);
                if (pos < 0) { return 0 - 1; }
                continue;
            }
        }
        if (c == '>') {
            if (input[pos + 1] == '>') { return pos + 2; }
        }
        pos = pos + 1;
    }
    return 0 - 1;
}

fn parse_xref(input, pos, n) {
    // "xref" then pairs: offset generation
    var entries = 0;
    var total = 0;
    while (pos + 4 <= n) {
        var off = (input[pos] - '0') * 100 + (input[pos + 1] - '0') * 10
                + (input[pos + 2] - '0');
        if (off < 0) { break; }
        var gen = input[pos + 3] - '0';
        if (gen < 0) { break; }
        if (gen > 6) {
            total = total + input[off * gen];   // BUG: off*gen vs n
        }
        entries = entries + 1;
        pos = pos + 4;
        if (entries > 8) { break; }
    }
    return total + entries;
}

fn translate_font(flags, code, widths) {
    // Two independent flag bits shift the width index; their combination
    // lands past the table only when both are set (path-dependent).
    var index = code & 31;
    if (flags & 2) { index = index + 16; }
    if (flags & 8) { index = index * 2; }
    return widths[index];                       // BUG: both flags -> 94
}

fn main(input) {
    var n = len(input);
    if (n < 9) { return 0; }
    if (memcmp(input, 0, "%PDF-", 0, 5) != 0) { return 1; }
    var out = alloc(32);
    var widths = alloc(64);
    var total = 0;
    var pos = 5;
    while (pos + 2 < n) {
        var c = input[pos];
        if (c == '(') {
            var next = parse_string_lit(input, pos + 1, n, out);
            if (next < 0) { break; }
            pos = next;
            continue;
        }
        if (c == '<') {
            if (input[pos + 1] == '<') {
                var after = parse_dict(input, pos + 2, n, 0);
                if (after < 0) { break; }
                pos = after;
                continue;
            }
        }
        if (c == 'x') {
            if (pos + 4 <= n) {
                if (memcmp(input, pos, "xref", 0, 4) == 0) {
                    total = total + parse_xref(input, pos + 4, n);
                    pos = pos + 4;
                    continue;
                }
            }
        }
        if (c == '/') {
            if (pos + 2 < n) {
                if (input[pos + 1] == 'F') {
                    var flags = input[pos + 2];
                    total = total + translate_font(flags, input[pos + 2], widths);
                    pos = pos + 3;
                    continue;
                }
            }
        }
        pos = pos + 1;
    }
    return total;
}
"""

SEEDS = [
    b"%PDF-1.4 (hello \\n world) << /Type /Page >>",
    b"%PDF-1.7 xref0011 0025 /Fa (text)",
    b"%PDF-1.2 << /K << /V 3 >> >> (a\\101b)",
]

TOKENS = [b"%PDF-", b"xref", b"<<", b">>", b"(", b")", b"/F", b"\\"]


def build():
    # Repeated octal escapes accumulate: \7\7\7 -> octal 7, 63, 511.
    octal = b"%PDF-1 (\\7\\7\\7\\7)"
    # 8-deep dictionary nesting hits the depth sentinel probe.
    deep_dict = b"%PDF-1 " + b"<<" * 9 + b">>" * 9
    # xref entry with gen 9 and offset 900 reads input[8100].
    xref = b"%PDF-1 xref9009"
    # flags byte 0x1a has bits 2 and 8 set and code&31 = 26: (26+16)*2 = 84.
    font = b"%PDF-1 /F\x1a"
    return Subject(
        name="pdftotext",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_string_lit", 16, "heap-buffer-overflow-write",
                "octal escape accumulator is used as an output index "
                "(escape-sequence path accumulation)",
                octal, difficulty="path-dependent",
            ),
            make_bug(
                "parse_dict", 38, "heap-buffer-overflow-read",
                "dictionary nesting deeper than 6 probes a wild offset",
                deep_dict, difficulty="medium",
            ),
            make_bug(
                "parse_xref", 69, "heap-buffer-overflow-read",
                "xref offset times generation used as a raw file offset",
                xref, difficulty="medium",
            ),
            make_bug(
                "translate_font", 84, "heap-buffer-overflow-read",
                "two independent font-flag shifts combine past the width "
                "table (path-dependent flag combination)",
                font, difficulty="path-dependent",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=30_000,
        description="PDF object scanner: strings, dicts, xref, fonts",
    )
