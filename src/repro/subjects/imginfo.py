"""Subject ``imginfo`` — a JasPer-style image metadata reporter lookalike.

Scans JPEG-2000-ish marker structure and reports component geometry.  Two
planted defects (the paper's imginfo yields 2-3): a component-count table
overflow and a precision shift out of range.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16(buf, off) {
    return (buf[off] << 8) + buf[off + 1];
}

fn parse_siz(input, off, n) {
    if (off + 12 > n) { return 0 - 1; }
    var width = read_u16(input, off);
    var height = read_u16(input, off + 2);
    var ncomp = read_u16(input, off + 4);
    var comps = alloc(8);
    for (var c = 0; c < ncomp; c = c + 1) {
        comps[c] = input[off + 6 + c];     // BUG: ncomp unchecked vs 8
    }
    var prec = input[off + 6];
    var span = 1 << prec;                  // BUG: prec > 63 shift trap
    if (width == 0) { return 0 - 1; }
    return (height * span) / width;
}

fn scan_markers(input, n) {
    var pos = 2;
    var geometry = 0;
    var markers = 0;
    while (pos + 4 <= n) {
        if (input[pos] != 0xff) { return geometry; }
        var kind = input[pos + 1];
        var seglen = read_u16(input, pos + 2);
        if (seglen < 2) { return 0 - 2; }
        if (kind == 0x51) {
            geometry = parse_siz(input, pos + 4, n);
        }
        if (kind == 0xd9) { break; }
        pos = pos + 2 + seglen;
        markers = markers + 1;
        if (markers > 32) { break; }
    }
    return geometry;
}

fn main(input) {
    var n = len(input);
    if (n < 6) { return 0; }
    if (input[0] != 0xff) { return 1; }
    if (input[1] != 0x4f) { return 1; }
    return scan_markers(input, n);
}
"""


def _seg(kind, payload):
    seglen = len(payload) + 2
    return bytes([0xFF, kind, (seglen >> 8) & 0xFF, seglen & 0xFF]) + payload


MAGIC = b"\xff\x4f"


def _siz(width, height, ncomp, rest=b""):
    payload = bytes(
        [
            (width >> 8) & 0xFF,
            width & 0xFF,
            (height >> 8) & 0xFF,
            height & 0xFF,
            (ncomp >> 8) & 0xFF,
            ncomp & 0xFF,
        ]
    ) + rest
    return _seg(0x51, payload)


SEEDS = [
    MAGIC + _siz(64, 64, 3, b"\x08\x08\x08\x00\x00\x00"),
    MAGIC + _siz(16, 32, 1, b"\x04" + b"\x00" * 8),
    MAGIC + _siz(8, 8, 2, b"\x05\x06" + b"\x00" * 6),
]

TOKENS = [b"\xff\x4f", b"\xff\xd9", b"\xff\x51"]


def build():
    many_comps = MAGIC + _siz(4, 4, 20, b"\x01" * 24)
    big_prec = MAGIC + _siz(4, 4, 1, b"\xc8" + b"\x00" * 10)
    return Subject(
        name="imginfo",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_siz", 12, "heap-buffer-overflow-write",
                "component loop trusts the declared component count",
                many_comps, difficulty="medium",
            ),
            make_bug(
                "parse_siz", 15, "shift-out-of-range",
                "precision byte used directly as a shift amount",
                big_prec, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=20_000,
        description="JPEG-2000-ish marker scanner with SIZ geometry",
    )
