"""Development helper: verify a subject's bug census and print corrections.

Run as a module with subject module names, e.g.::

    python -m repro.subjects._census_check cflow flvmeta

For each census witness the actual trap site is printed, so declared
(function, line, kind) triples can be fixed up quickly while authoring
subjects.  Not part of the public API.
"""

import importlib
import sys


def check(module_name):
    module = importlib.import_module("repro.subjects." + module_name)
    subject = module.build()
    print("== %s ==" % subject.name)
    for seed in subject.seeds:
        result = subject.run(seed)
        status = "ok"
        if result.crashed:
            status = "CRASH %s" % (result.trap.bug_id(),)
        elif result.timeout:
            status = "HANG"
        print("  seed %-28r %s (instrs=%d)" % (seed[:24], status, result.instr_count))
    for bug in subject.bugs:
        result = subject.run(bug.witness)
        if result.crashed:
            actual = result.trap.bug_id()
            mark = "OK " if actual == bug.bug_id else "FIX"
            print(
                "  %s declared=%r actual=%r" % (mark, bug.bug_id, actual)
            )
        elif result.timeout:
            print("  HANG witness for %r" % (bug.bug_id,))
        else:
            print("  NO-CRASH witness for %r (ret=%d)" % (bug.bug_id, result.retval))
    problems = subject.verify_census()
    print("  census: %s" % ("CLEAN" if not problems else "%d problems" % len(problems)))
    stats = subject.program.stats()
    print("  program: %(functions)d funcs, %(blocks)d blocks, %(edges)d edges" % stats)


if __name__ == "__main__":
    for name in sys.argv[1:]:
        check(name)
