"""Subject ``objdump`` — an object-file disassembler lookalike.

Parses a section table, then linearly decodes a toy instruction set with
prefix bytes that change operand widths — the classic decoder shape where
*mode state set on one path is consumed later in the same activation*.  The
paper's objdump is a strong subject for the path-aware fuzzers (cull finds
12 vs pcguard's 8, and 4 of the week-long zero-days live here); the census
leans into decoder defects that need prefix combinations.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16le(input, off) {
    return input[off] + (input[off + 1] << 8);
}

fn decode_insn(input, pos, n, regs) {
    // One instruction: optional prefixes then opcode + operands.  The
    // width/segment state set by prefixes is consumed by later operand
    // decoding within this same call — prefix combinations are distinct
    // Ball-Larus paths but share all edges.
    var width = 1;
    var seg = 0;
    var rep = 0;
    if (input[pos] == 0x66) { width = 2; pos = pos + 1; }
    if (pos < n) {
        if (input[pos] == 0x67) { seg = 4; pos = pos + 1; }
    }
    if (pos < n) {
        if (input[pos] == 0xf3) { rep = 1; pos = pos + 1; }
    }
    if (pos >= n) { return 0 - 1; }
    var op = input[pos];
    pos = pos + 1;
    if (op == 0x01) {
        // reg-reg add: operand byte selects two of 8 registers
        if (pos >= n) { return 0 - 1; }
        var modrm = input[pos];
        var dst = (modrm >> 4) + seg;
        var src = modrm & 7;
        regs[dst] = regs[dst] + regs[src];   // BUG: seg+high nibble > 15
        return pos + 1;
    }
    if (op == 0x8b) {
        // load: [imm] with prefix-scaled displacement
        if (pos + width > n) { return 0 - 1; }
        if (width == 2) {
            var disp16 = read_u16le(input, pos);
            regs[0] = input[disp16 + seg];   // BUG: 16-bit displacement
            return pos + 2;
        }
        var disp = input[pos];
        regs[1] = input[disp * 2];           // BUG: doubled displacement
        return pos + 1;
    }
    if (op == 0xcd) {
        if (pos >= n) { return 0 - 1; }
        var vec = input[pos];
        if (rep == 1) {
            var slot = 256 / (vec - 128);    // BUG: rep + int 0x80
            return pos + 1 + slot % 2;
        }
        return pos + 1;
    }
    if (op == 0xc3) { return 0 - 9; }
    return pos;
}

fn parse_sections(input, n, offs) {
    if (n < 8) { return 0 - 1; }
    var count = input[5];
    if (count > 4) { count = 4; }
    var cursor = 6;
    for (var s = 0; s < count; s = s + 1) {
        if (cursor + 4 > n) { return s; }
        var off = read_u16le(input, cursor);
        var size = read_u16le(input, cursor + 2);
        offs[s * 2] = off;
        offs[s * 2 + 1] = size;
        cursor = cursor + 4;
    }
    return count;
}

fn main(input) {
    var n = len(input);
    if (n < 10) { return 0; }
    if (memcmp(input, 0, "OBJ1", 0, 4) != 0) { return 1; }
    var offs = alloc(8);
    var regs = alloc(16);
    var sections = parse_sections(input, n, offs);
    if (sections < 1) { return 2; }
    var decoded = 0;
    for (var s = 0; s < sections; s = s + 1) {
        var pos = offs[s * 2];
        var end = pos + offs[s * 2 + 1];
        if (end > n) { end = n; }
        while (pos < end) {
            if (pos >= n) { break; }
            var next = decode_insn(input, pos, n, regs);
            if (next < 0) { break; }
            if (next <= pos) { break; }
            pos = next;
            decoded = decoded + 1;
            if (decoded > 40) { return decoded; }
        }
    }
    return decoded;
}
"""

def _hdr(sections):
    body = b"OBJ1\x00" + bytes([len(sections)])
    cursor = 6 + 4 * len(sections)
    table = b""
    blobs = b""
    for blob in sections:
        table += bytes([cursor & 0xFF, cursor >> 8, len(blob) & 0xFF, len(blob) >> 8])
        blobs += blob
        cursor += len(blob)
    return body + table + blobs


SEEDS = [
    _hdr([b"\x01\x23\x01\x45\xc3"]),
    _hdr([b"\x66\x8b\x02\x00\xc3", b"\xcd\x10\xc3"]),
    _hdr([b"\xf3\xcd\x40\x01\x11\xc3"]),
]

TOKENS = [b"OBJ1", b"\x66", b"\x67", b"\xf3", b"\x8b", b"\xcd", b"\x01", b"\xc3"]


def build():
    # seg prefix (0x67) + modrm high nibble 15: dst = 15 + 4 = 19 > 15.
    seg_combo = _hdr([b"\x67\x01\xf0\xc3"])
    # width prefix doubles the displacement scale: 0x66 0x8b disp16 weird.
    wide_load = _hdr([b"\x66\x8b\xff\x7f\xc3"])
    # rep prefix + int 0x80 divides by zero.
    rep_int = _hdr([b"\xf3\xcd\x80\xc3"])
    # plain load with big displacement reads past the file.
    plain_load = _hdr([b"\x8b\xee\xc3"])
    return Subject(
        name="objdump",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "decode_insn", 29, "heap-buffer-overflow-read",
                "segment prefix shifts the register index past the bank "
                "(prefix + modrm path combination)",
                seg_combo, difficulty="path-dependent",
            ),
            make_bug(
                "decode_insn", 37, "heap-buffer-overflow-read",
                "operand-width prefix scales the displacement past the file",
                wide_load, difficulty="path-dependent",
            ),
            make_bug(
                "decode_insn", 48, "division-by-zero",
                "rep-prefixed interrupt 0x80 divides by (vec - 128)",
                rep_int, difficulty="medium",
            ),
            make_bug(
                "decode_insn", 41, "heap-buffer-overflow-read",
                "plain load displacement unchecked against the file size",
                plain_load, difficulty="shallow",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=30_000,
        description="section parser + prefix-stateful instruction decoder",
    )
