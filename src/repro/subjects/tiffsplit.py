"""Subject ``tiffsplit`` — a TIFF IFD splitter lookalike.

Reads the TIFF header (II/MM byte order), walks IFD entries, and extracts
strips.  Defects: offset-driven OOB reads, a strip copy trusting the
declared byte count, and a *path-dependent* byte-order confusion — the
big-endian header path leaves a stride variable that only overflows when a
long-type entry is decoded in the same activation.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16(input, off, be) {
    if (be == 1) { return (input[off] << 8) + input[off + 1]; }
    return input[off] + (input[off + 1] << 8);
}

fn read_u32(input, off, be) {
    if (be == 1) {
        return (read_u16(input, off, 1) << 16) + read_u16(input, off + 2, 1);
    }
    return read_u16(input, off, 0) + (read_u16(input, off + 2, 0) << 16);
}

fn handle_entry(input, off, n, be, strips) {
    var tag = read_u16(input, off, be);
    var kind = read_u16(input, off + 2, be);
    var count = read_u32(input, off + 4, be);
    var value = read_u32(input, off + 8, be);
    // Path-dependent combination: the wide-stride branch (kind == 4,
    // count > 2) plus the big-endian path yields stride 12 and a base
    // past the strip table.
    var stride = 1;
    if (kind == 4) {
        if (count > 2) { stride = 4; }
    }
    var base = 0;
    if (be == 1) { base = count; }
    if (tag == 0x0111) {
        for (var s = 0; s < count; s = s + 1) {
            strips[base + s * stride] = value + s;  // BUG: combo overflow
            if (s > 6) { break; }
        }
        return 1;
    }
    if (tag == 0x0117) {
        var total = 0;
        for (var s = 0; s < count; s = s + 1) {
            total = total + input[value + s];       // BUG: raw file offset
            if (s > 14) { break; }
        }
        return total;
    }
    if (tag == 0x0100) {
        var width = value;
        if (width == 0) { return 0 - 1; }
        return 65536 / (width - 3);
    }
    return 0;
}

fn copy_strip(input, n, src, count) {
    var out = alloc(48);
    copy(out, 0, input, src, count);                 // BUG: count vs 48
    return out[0];
}

fn main(input) {
    var n = len(input);
    if (n < 10) { return 0; }
    var be = 0 - 1;
    if (input[0] == 'I') {
        if (input[1] == 'I') { be = 0; }
    }
    if (input[0] == 'M') {
        if (input[1] == 'M') { be = 1; }
    }
    if (be < 0) { return 1; }
    if (read_u16(input, 2, be) != 42) { return 2; }
    var ifd = read_u32(input, 4, be);
    if (ifd + 2 > n) { return 3; }
    var entries = read_u16(input, ifd, be);
    if (entries > 16) { entries = 16; }
    var strips = alloc(24);
    var acc = 0;
    var cursor = ifd + 2;
    for (var e = 0; e < entries; e = e + 1) {
        if (cursor + 12 > n) { break; }
        acc = acc + handle_entry(input, cursor, n, be, strips);
        cursor = cursor + 12;
    }
    if (acc > 900) {
        acc = acc + copy_strip(input, n, 8, acc - 880);
    }
    return acc;
}
"""


def _u16(v, be):
    return bytes([(v >> 8) & 0xFF, v & 0xFF]) if be else bytes([v & 0xFF, (v >> 8) & 0xFF])


def _u32(v, be):
    if be:
        return bytes([(v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF])
    return bytes([v & 0xFF, (v >> 8) & 0xFF, (v >> 16) & 0xFF, (v >> 24) & 0xFF])


def _tiff(be, entries, pad=b""):
    order = b"MM" if be else b"II"
    header = order + _u16(42, be) + _u32(8, be)
    body = _u16(len(entries), be)
    for tag, kind, count, value in entries:
        body += _u16(tag, be) + _u16(kind, be) + _u32(count, be) + _u32(value, be)
    return header + body + pad


SEEDS = [
    _tiff(False, [(0x0100, 3, 1, 300), (0x0111, 3, 2, 16)], b"\x00" * 16),
    _tiff(True, [(0x0100, 3, 1, 400)], b"\x00" * 12),
    _tiff(False, [(0x0117, 4, 2, 10)], b"\x00" * 24),
]

TOKENS = [b"II", b"MM", b"\x01\x11", b"\x01\x17", b"\x01\x00"]


def build():
    # Big-endian + kind 4 + count 5: base=5, stride=4 -> index up to 21 ok;
    # count 7 -> base 7 + 6*4 = 31 > 24.
    combo = _tiff(True, [(0x0111, 4, 7, 1)], b"\x00" * 8)
    # Strip byte counts entry pointing far outside the file.
    offset_read = _tiff(False, [(0x0117, 4, 3, 5000)], b"\x00" * 8)
    # Width 3 -> resolution division by (width - 3).
    width_three = _tiff(False, [(0x0100, 3, 1, 3)], b"\x00" * 8)
    # Width 4 -> acc 65536 -> enormous strip copy into the 48-byte buffer.
    huge_copy = _tiff(False, [(0x0100, 3, 1, 4)], b"\x00" * 8)
    return Subject(
        name="tiffsplit",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "handle_entry", 29, "heap-buffer-overflow-write",
                "big-endian base plus wide long-type stride overflow the "
                "strip table (path-dependent combination)",
                combo, difficulty="path-dependent",
            ),
            make_bug(
                "handle_entry", 37, "heap-buffer-overflow-read",
                "strip byte counts read through a raw file offset",
                offset_read, difficulty="shallow",
            ),
            make_bug(
                "handle_entry", 45, "division-by-zero",
                "resolution normalization divides by (width - 3)",
                width_three, difficulty="medium",
            ),
            make_bug(
                "copy_strip", 52, "heap-buffer-overflow-write",
                "strip extraction copies an attacker-sized count into a "
                "48-byte buffer",
                huge_copy, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=192,
        exec_instr_budget=25_000,
        description="TIFF IFD walker with strip extraction",
    )
