"""Subject ``ffmpeg`` — an AV container demuxer lookalike.

A chunked container ("AVC1"): stream headers declare codec parameters,
frame chunks run a small DCT-flavoured decode loop.  The paper's ffmpeg
yields few bugs for everyone (path 2, pcguard 3, opp 0) despite the huge
codebase; accordingly the census is small and deep — defects need a valid
stream header *and* specific frame payloads.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn read_u16(input, off) {
    return (input[off] << 8) + input[off + 1];
}

fn parse_stream_header(input, off, n, params) {
    if (off + 6 > n) { return 0 - 1; }
    var codec = input[off];
    var width = read_u16(input, off + 1);
    var height = read_u16(input, off + 3);
    var depth = input[off + 5];
    if (codec > 3) { return 0 - 1; }
    if (width == 0) { return 0 - 1; }
    if (width > 64) { return 0 - 1; }
    if (height > 64) { return 0 - 1; }
    params[0] = codec;
    params[1] = width;
    params[2] = height;
    params[3] = depth;
    return 0;
}

fn decode_frame(input, off, size, n, params) {
    var codec = params[0];
    var width = params[1];
    var depth = params[3];
    var block = alloc(64);
    var coeffs = 0;
    for (var i = 0; i < size; i = i + 1) {
        if (off + i >= n) { break; }
        var v = input[off + i];
        if (codec == 2) {
            // planar mode: depth scales the block index
            var at = (v & 15) * (depth & 7);
            block[at] = v;                 // BUG: depth 5+ overflows 64
        } else {
            block[v & 63] = v;
        }
        coeffs = coeffs + 1;
    }
    if (codec == 3) {
        var quant = read_u16(input, off, );
        return coeffs / (quant - 513);     // BUG: quant 513
    }
    return coeffs;
}

fn main(input) {
    var n = len(input);
    if (n < 12) { return 0; }
    if (memcmp(input, 0, "AVC1", 0, 4) != 0) { return 1; }
    var params = alloc(4);
    params[1] = 8;
    var pos = 4;
    var frames = 0;
    var got_header = 0;
    while (pos + 3 <= n) {
        var kind = input[pos];
        var size = read_u16(input, pos + 1);
        var body = pos + 3;
        if (kind == 'S') {
            if (parse_stream_header(input, body, n, params) == 0) {
                got_header = 1;
            }
        }
        if (kind == 'F') {
            if (got_header == 1) {
                var r = decode_frame(input, body, size, n, params);
                if (r < 0) { return frames; }
                frames = frames + 1;
            }
        }
        pos = body + size;
        if (frames > 12) { break; }
    }
    return frames;
}
"""

SOURCE = SOURCE.replace("read_u16(input, off, )", "read_u16(input, off)")


def _chunk(kind, payload):
    return kind + bytes([(len(payload) >> 8) & 0xFF, len(payload) & 0xFF]) + payload


def _header(codec=1, width=8, height=8, depth=2):
    return _chunk(
        b"S",
        bytes([codec, (width >> 8) & 0xFF, width & 0xFF, (height >> 8) & 0xFF,
               height & 0xFF, depth]),
    )


SEEDS = [
    b"AVC1" + _header() + _chunk(b"F", bytes([1, 2, 3, 4, 60, 61])),
    b"AVC1" + _header(codec=2, depth=3) + _chunk(b"F", bytes([15, 30, 45])),
    b"AVC1" + _header(codec=3) + _chunk(b"F", bytes([0, 100, 7, 8])),
]

TOKENS = [b"AVC1", b"S", b"F"]


def build():
    # codec 2 + depth 7: (v&15)*7 up to 105 > 64.
    planar = b"AVC1" + _header(codec=2, depth=7) + _chunk(b"F", bytes([15, 14]))
    # codec 3 frame whose first two bytes read back as 513 (0x02 0x01).
    quant = b"AVC1" + _header(codec=3) + _chunk(b"F", bytes([0x02, 0x01, 9]))
    return Subject(
        name="ffmpeg",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "decode_frame", 34, "heap-buffer-overflow-write",
                "planar codec scales the block index by the declared bit "
                "depth (header + frame combination)",
                planar, difficulty="deep",
            ),
            make_bug(
                "decode_frame", 42, "division-by-zero",
                "quantizer 513 cancels the denominator",
                quant, difficulty="deep",
            ),
        ],
        tokens=TOKENS,
        max_input_len=192,
        exec_instr_budget=35_000,
        description="chunked AV demuxer with per-codec frame decoding",
    )
