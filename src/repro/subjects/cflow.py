"""Subject ``cflow`` — a C control-flow extractor lookalike.

A scanner tokenizes C-ish source and a parser tracks function declarations,
maintaining a fixed-capacity token stack.  The flagship defect reproduces
the paper's zero-day narrative: the stack cursor creeps toward its limit
only while a *rare in-iteration path combination* (identifier directly
followed by another identifier, i.e. skipping unexpected tokens) repeats —
an accumulation that edge coverage has no reason to keep stepping stones
for, but whose Ball-Larus iteration path (plus hit-count buckets) registers
as novelty.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn classify(ch) {
    if (ch == '(') { return 1; }
    if (ch == ')') { return 2; }
    if (ch == '{') { return 3; }
    if (ch == '}') { return 4; }
    if (ch == ';') { return 5; }
    if (ch >= 'a') {
        if (ch <= 'z') { return 6; }
    }
    if (ch >= 'A') {
        if (ch <= 'Z') { return 6; }
    }
    if (ch >= '0') {
        if (ch <= '9') { return 7; }
    }
    return 0;
}

fn parse_function_declaration(input, pos, n, stack, curs) {
    // Scans one declaration; skips unexpected tokens, pushing them on the
    // token stack.  curs only grows when an identifier is directly followed
    // by another identifier with no separator (the rare path combination).
    var depth = 0;
    var prev_kind = 0;
    while (pos < n) {
        var kind = classify(input[pos]);
        pos = pos + 1;
        if (kind == 1) { depth = depth + 1; }
        if (kind == 2) {
            if (depth == 0) { return 0 - pos; }
            depth = depth - 1;
        }
        if (kind == 6) {
            if (prev_kind == 6) {
                stack[curs] = pos;      // BUG: no bound check on curs
                curs = curs + 1;
            }
        }
        if (kind == 5) {
            if (depth == 0) { return curs; }
        }
        prev_kind = kind;
    }
    return curs;
}

fn count_braces(input, n) {
    var level = 0;
    var maxlevel = 0;
    for (var i = 0; i < n; i = i + 1) {
        var k = classify(input[i]);
        if (k == 3) {
            level = level + 1;
            if (level > maxlevel) { maxlevel = level; }
        }
        if (k == 4) { level = level - 1; }
    }
    if (level != 0) { return 0 - 1; }
    return maxlevel;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    var stack = alloc(24);
    var curs = 0;
    var pos = 0;
    var decls = 0;
    while (pos < n) {
        var r = parse_function_declaration(input, pos, n, stack, curs);
        if (r < 0) {
            pos = 0 - r;
        } else {
            curs = r;
            decls = decls + 1;
            pos = pos + 1;
            var skip = 0;
            while (pos < n) {
                var k = classify(input[pos]);
                if (k == 5) { skip = 1; }
                pos = pos + 1;
                if (skip == 1) { break; }
            }
        }
        if (pos >= n) { break; }
    }
    var depth = count_braces(input, n);
    if (depth > 11) {
        var ratio = n / (depth - 12);      // BUG: div-by-zero at depth 12
        return ratio;
    }
    return decls + curs;
}
"""

SEEDS = [
    b"int main() { return 0; }",
    b"void f(int a); int g;",
    b"a b; c d; { x y; }",
]

TOKENS = [b"{", b"}", b"(", b")", b";"]


def build():
    # Witness 1: 25+ adjacent-identifier pairs push curs past capacity 24.
    overflow_witness = b"a" * 60 + b";"
    # Witness 2: exactly 12 balanced brace levels -> depth-12 division.
    brace_witness = b"{" * 12 + b"}" * 12
    return Subject(
        name="cflow",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_function_declaration",
                35,
                "heap-buffer-overflow-write",
                "token stack cursor creeps to capacity through repeated "
                "identifier-identifier iterations (paper's cflow zero-day "
                "analogue)",
                overflow_witness,
                difficulty="path-dependent",
            ),
            make_bug(
                "main",
                89,
                "division-by-zero",
                "brace-depth statistics divide by (depth - 12)",
                brace_witness,
                difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=128,
        exec_instr_budget=30_000,
        description="C control-flow extractor: scanner + declaration parser",
    )
