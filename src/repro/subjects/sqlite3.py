"""Subject ``sqlite3`` — a SQL front-end lookalike.

Tokenizes a SQL-ish statement, resolves keywords through a hash-dispatch
table, and evaluates WHERE-clause arithmetic on a toy register machine.
The paper's sqlite3 favours pcguard (9 bugs vs path's 5: deep grammar
corners need throughput); the census places most defects behind multi-
keyword sequences with one path-dependent register-machine defect.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn keyword_code(input, pos, n) {
    if (pos + 6 <= n) {
        if (memcmp(input, pos, "SELECT", 0, 6) == 0) { return 1; }
        if (memcmp(input, pos, "INSERT", 0, 6) == 0) { return 2; }
        if (memcmp(input, pos, "DELETE", 0, 6) == 0) { return 3; }
    }
    if (pos + 5 <= n) {
        if (memcmp(input, pos, "WHERE", 0, 5) == 0) { return 4; }
        if (memcmp(input, pos, "LIMIT", 0, 5) == 0) { return 5; }
    }
    if (pos + 4 <= n) {
        if (memcmp(input, pos, "FROM", 0, 4) == 0) { return 6; }
        if (memcmp(input, pos, "JOIN", 0, 4) == 0) { return 7; }
    }
    return 0;
}

fn eval_where(input, pos, n, regs) {
    // Register machine: digits push, '*' multiplies, '%' takes modulo.
    // The modulo path divides by the top of stack — a zero pushed through
    // the '*'-collapse path (two pushes then '*') survives to '%'.
    var sp = 0;
    while (pos < n) {
        var c = input[pos];
        pos = pos + 1;
        if (c >= '0') {
            if (c <= '9') {
                if (sp > 7) { return 0 - 1; }
                regs[sp] = c - '0';
                sp = sp + 1;
                continue;
            }
        }
        if (c == '*') {
            if (sp >= 2) {
                regs[sp - 2] = regs[sp - 2] * regs[sp - 1];
                sp = sp - 1;
            }
            continue;
        }
        if (c == '%') {
            if (sp >= 2) {
                regs[sp - 2] = regs[sp - 2] % regs[sp - 1];  // BUG: top 0
                sp = sp - 1;
            }
            continue;
        }
        if (c == ';') { break; }
        if (c == ' ') { continue; }
        break;
    }
    if (sp > 0) { return regs[sp - 1]; }
    return 0;
}

fn parse_limit(input, pos, n) {
    var value = 0;
    while (pos < n) {
        var c = input[pos];
        if (c < '0') { break; }
        if (c > '9') { break; }
        value = value * 10 + (c - '0');
        pos = pos + 1;
    }
    var pages = alloc(32);
    var slot = value / 8;
    pages[slot] = 1;                        // BUG: limit >= 256
    return value;
}

fn parse_join(input, pos, n, tables) {
    var t1 = input[pos];
    if (pos + 2 >= n) { return 0 - 1; }
    var t2 = input[pos + 2];
    var key = (t1 * 7 + t2) % 37;
    tables[key] = tables[key] + 1;          // ok: 37 <= 40
    if (t1 == t2) {
        var self_id = 1000 / (t2 - t1);     // BUG: self-join div 0
        return self_id;
    }
    return key;
}

fn main(input) {
    var n = len(input);
    if (n < 7) { return 0; }
    var regs = alloc(8);
    var tables = alloc(40);
    var total = 0;
    var pos = 0;
    var statements = 0;
    while (pos < n) {
        var code = keyword_code(input, pos, n);
        if (code == 1) { pos = pos + 6; total = total + 1; continue; }
        if (code == 2) { pos = pos + 6; total = total + 2; continue; }
        if (code == 3) { pos = pos + 6; total = total + 3; continue; }
        if (code == 4) {
            total = total + eval_where(input, pos + 5, n, regs);
            while (pos < n) {
                if (input[pos] == ';') { break; }
                pos = pos + 1;
            }
            pos = pos + 1;
            statements = statements + 1;
            continue;
        }
        if (code == 5) {
            total = total + parse_limit(input, pos + 5, n);
            pos = pos + 5;
            continue;
        }
        if (code == 7) {
            total = total + parse_join(input, pos + 4, n, tables);
            pos = pos + 4;
            continue;
        }
        pos = pos + 1;
        if (statements > 12) { break; }
    }
    return total;
}
"""

SEEDS = [
    b"SELECT FROM t WHERE 34*2;",
    b"INSERT JOIN ab LIMIT 40",
    b"DELETE WHERE 9%4; SELECT LIMIT 12",
]

TOKENS = [b"SELECT", b"INSERT", b"DELETE", b"WHERE", b"LIMIT", b"FROM", b"JOIN", b";"]


def build():
    # 0 pushed, then 5, '*' collapses to 0, push 3... need top == 0 at '%':
    # "30%" -> regs 3,0 -> 3 % 0.
    mod_zero = b"WHERE 30%;"
    # LIMIT 260 -> slot 32 past the 32-entry page table.
    big_limit = b"LIMIT260"
    # JOIN whose first and third table letters coincide.
    self_join = b"JOINxyx"
    return Subject(
        name="sqlite3",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "eval_where", 43, "division-by-zero",
                "WHERE arithmetic takes modulo by a zero literal surviving "
                "on the operand stack (operator-sequence path)",
                mod_zero, difficulty="path-dependent",
            ),
            make_bug(
                "parse_limit", 67, "heap-buffer-overflow-write",
                "LIMIT page slot exceeds the 32-entry table",
                big_limit, difficulty="medium",
            ),
            make_bug(
                "parse_join", 78, "division-by-zero",
                "self-joins divide by the table-letter difference",
                self_join, difficulty="medium",
            ),
        ],
        tokens=TOKENS,
        max_input_len=160,
        exec_instr_budget=30_000,
        description="SQL keyword dispatch + WHERE register machine",
    )
