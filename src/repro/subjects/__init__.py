"""The synthetic UNIFUZZ-like benchmark suite.

Eighteen subjects named after the paper's evaluation programs (Table I),
plus the ``motivating`` example from Figure 1.  Each subject module exposes
``build() -> Subject``; built subjects are cached here (compilation is
deterministic, so sharing is safe).
"""

import importlib

# The 18 evaluation subjects, in the paper's Table I order.
SUITE_NAMES = [
    "cflow",
    "exiv2",
    "ffmpeg",
    "flvmeta",
    "gdk",
    "imginfo",
    "infotocap",
    "jhead",
    "jq",
    "lame",
    "mp3gain",
    "mp42aac",
    "mujs",
    "nm_new",
    "objdump",
    "pdftotext",
    "sqlite3",
    "tiffsplit",
]

EXTRA_NAMES = ["motivating"]

_CACHE = {}


def subject_names():
    """The 18 evaluation subject names (Table I order)."""
    return list(SUITE_NAMES)


def all_subject_names():
    """Evaluation subjects plus the motivating example."""
    return SUITE_NAMES + EXTRA_NAMES


def get_subject(name):
    """Build (or fetch the cached) Subject called ``name``."""
    if name not in _CACHE:
        if name not in SUITE_NAMES and name not in EXTRA_NAMES:
            raise KeyError("unknown subject %r" % name)
        module = importlib.import_module("repro.subjects." + name)
        _CACHE[name] = module.build()
    return _CACHE[name]


def load_suite():
    """All 18 evaluation subjects, built."""
    return [get_subject(name) for name in SUITE_NAMES]
