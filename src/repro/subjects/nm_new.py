"""Subject ``nm_new`` — a symbol-table lister lookalike.

The paper's nm-new yields *zero* bugs for every fuzzer; this subject mirrors
that: its defects sit behind an 8-byte magic **and** a checksum over the
header that random mutation essentially never satisfies (the seeds do not
carry a valid checksum either).  The census documents the defects with
hand-crafted witnesses; campaigns are expected to find none.
"""

from repro.subjects.base import Subject, make_bug

SOURCE = """\
fn checksum(input, off, count) {
    var sum = 7;
    for (var i = 0; i < count; i = i + 1) {
        sum = (sum * 31 + input[off + i]) % 65521;
    }
    return sum;
}

fn parse_symbol(input, off, n, names) {
    if (off + 8 > n) { return 0 - 1; }
    var kind = input[off];
    var nameoff = (input[off + 1] << 8) + input[off + 2];
    var size = (input[off + 3] << 8) + input[off + 4];
    if (kind == 0x7f) {
        names[nameoff] = size;             // BUG: unchecked name offset
        return 8;
    }
    if (kind == 0x2a) {
        var weight = size / (nameoff - 77); // BUG: div 0 at nameoff 77
        return 8 + weight % 4;
    }
    return 8;
}

fn main(input) {
    var n = len(input);
    if (n < 20) { return 0; }
    if (memcmp(input, 0, "SYMT\\x7fELF", 0, 8) != 0) { return 1; }
    // Self-referential gate: the checksum covers the whole 10-byte
    // header region and must land on a fixed constant, so patching any
    // observed operand back into the input (input-to-state) perturbs
    // the sum itself -- the cmplog-resistant shape real checksums have.
    var actual = checksum(input, 8, 10);
    if (actual != 48879) { return 2; }
    var names = alloc(64);
    var pos = 18;
    var count = 0;
    while (pos + 8 <= n) {
        var advance = parse_symbol(input, pos, n, names);
        if (advance < 0) { break; }
        pos = pos + advance;
        count = count + 1;
        if (count > 16) { break; }
    }
    return count;
}
"""

# The MiniC lexer has no hex string escapes; build the magic comparison from
# a 4-byte memcmp plus per-byte checks.
SOURCE = SOURCE.replace(
    'if (memcmp(input, 0, "SYMT\\x7fELF", 0, 8) != 0) { return 1; }',
    'if (memcmp(input, 0, "SYMT", 0, 4) != 0) { return 1; }\n'
    "    if (input[4] != 0x7f) { return 1; }\n"
    "    if (input[5] != 'E') { return 1; }\n"
    "    if (input[6] != 'L') { return 1; }\n"
    "    if (input[7] != 'F') { return 1; }",
)


def _checksum(payload):
    total = 7
    for byte in payload:
        total = (total * 31 + byte) % 65521
    return total


def _solve_header():
    """Find a 10-byte header region whose rolling checksum is 48879."""
    prefix = b"HDRDATA"
    for a in range(256):
        for b in range(256):
            partial = _checksum(prefix + bytes([a, b]))
            # Solve the final byte analytically: partial*31 + c == 48879.
            c = (48879 - partial * 31) % 65521
            if 0 <= c < 256:
                return prefix + bytes([a, b, c])
    raise AssertionError("no header satisfies the checksum")


_HEADER = _solve_header()


def _image(symbols, valid_checksum=True):
    """Magic (8) + solved 10-byte checksummed header + symbol records."""
    header = _HEADER if valid_checksum else b"HDRDATA1\x00\x00"
    return b"SYMT\x7fELF" + header + symbols


SEEDS = [
    b"SYMT\x7fELF" + b"\x00\x00" + b"\x01" * 24,  # wrong checksum
    b"SYMTxELF" + b"\x00" * 20,
    b"\x7fELF" + b"\x00" * 24,
]

TOKENS = [b"SYMT", b"\x7fELF", b"\x7f", b"\x2a"]


def build():
    symbol_oob = _image(bytes([0x7F, 9, 99, 0, 2, 0, 0, 0]))
    div_zero = _image(bytes([0x2A, 0, 77, 0, 5, 0, 0, 0]) + b"\x00" * 8)
    return Subject(
        name="nm_new",
        source=SOURCE,
        seeds=SEEDS,
        bugs=[
            make_bug(
                "parse_symbol", 15, "heap-buffer-overflow-write",
                "symbol name offset indexes the 64-entry name table "
                "(behind magic + checksum: effectively unreachable)",
                symbol_oob, difficulty="unreachable",
            ),
            make_bug(
                "parse_symbol", 19, "division-by-zero",
                "weak-symbol weight divides by (nameoff - 77) "
                "(behind magic + checksum: effectively unreachable)",
                div_zero, difficulty="unreachable",
            ),
        ],
        tokens=TOKENS,
        max_input_len=128,
        exec_instr_budget=25_000,
        description="symbol lister gated by magic + checksum (no findable bugs)",
    )
